"""Process-boundary purity: what crosses into a worker must pickle.

``parallel_map`` / ``ProcessPoolExecutor.submit`` ship their callable
and arguments to a worker process by pickling.  Lambdas, nested
functions (closures over locals), bound methods and open file handles
all fail there — some loudly at submit time, some (bound methods of
stateful objects) by silently snapshotting state the parent keeps
mutating.  And a worker that mutates a module global diverges from the
serial run, because the mutation happens in a forked copy the parent
never sees — the exact shared-state drift the serial==parallel
bit-identity guarantee forbids.

Two rules over the shared project model:

* ``purity-unpicklable`` — at every submission site (configured
  ``[tool.repro-lint.purity] submit-functions`` plus structural
  ``.submit``/``.map`` on executor-typed locals), flag lambdas, nested
  functions, bound methods, generator arguments, and locals bound by
  ``open(...)``.
* ``purity-global-mutation`` — resolve the submitted callable to its
  worker entry point and BFS the call graph under it; any reachable
  module-global mutation is flagged at the mutation site with the full
  submission-to-mutation hop chain.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..astutil import ParsedFile
from ..config import LintConfig
from ..findings import Finding
from ..project import (MODULE_SCOPE, CallSite, FunctionInfo, ProjectModel,
                       scope_locals)
from ..registry import rule

#: Executor method calls that cross a process boundary, matched on the
#: dotted external form ``resolve_call_in`` produces for typed locals.
_EXECUTOR_METHODS = ("ProcessPoolExecutor.submit", "ProcessPoolExecutor.map")


def _caller_context(project: ProjectModel, caller: str
                    ) -> Tuple[str, Optional[FunctionInfo]]:
    """(module, FunctionInfo-or-None) for a call-site owner id."""
    fn = project.functions.get(caller)
    if fn is not None:
        return fn.module, fn
    return caller.rsplit("." + MODULE_SCOPE, 1)[0], None


def _submission_sites(project: ProjectModel, config: LintConfig
                      ) -> List[CallSite]:
    submit_names = set(config.purity_submit)
    sites: List[CallSite] = []
    for owner_sites in project.calls.values():
        for site in owner_sites:
            target = site.callee or site.external
            if target is None:
                continue
            if target in submit_names or any(
                    target.endswith("." + method) or target == method
                    for method in _EXECUTOR_METHODS):
                sites.append(site)
    sites.sort(key=lambda site: (site.relpath, site.line))
    return sites


def _local_bindings(fn: Optional[FunctionInfo]
                    ) -> Tuple[Dict[str, ast.Lambda], Set[str]]:
    """Names bound to lambdas / open() handles in the caller scope."""
    lambdas: Dict[str, ast.Lambda] = {}
    handles: Set[str] = set()
    if fn is None:
        return lambdas, handles
    assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if isinstance(node.value, ast.Lambda):
                lambdas[name] = node.value
            elif isinstance(node.value, ast.Call) and \
                    isinstance(node.value.func, ast.Name) and \
                    node.value.func.id == "open":
                handles.add(name)
        elif isinstance(node, ast.With):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name) and \
                        isinstance(item.context_expr, ast.Call) and \
                        isinstance(item.context_expr.func, ast.Name) and \
                        item.context_expr.func.id == "open":
                    handles.add(item.optional_vars.id)
    return lambdas, handles


def _resolve_callable(project: ProjectModel, module: str,
                      caller: str, fn: Optional[FunctionInfo],
                      expr: ast.expr) -> Optional[str]:
    """Project function id the submitted callable names, if any."""
    if isinstance(expr, ast.Name):
        if fn is not None:
            nested = f"{caller}.{expr.id}"
            if nested in project.functions:
                return nested
        direct = f"{module}.{expr.id}"
        if direct in project.functions:
            return direct
        aliased = project.aliases_of(module).get(expr.id)
        if aliased is not None and aliased in project.functions:
            return aliased
        return None
    dotted = project.resolve_dotted(module, expr)
    if dotted is not None and dotted in project.functions:
        return dotted
    return None


def _describe_target(project: ProjectModel, site: CallSite) -> str:
    target = site.callee or site.external or "submission"
    if site.callee is not None and site.callee in project.functions:
        return project.functions[site.callee].qualname
    return target.rsplit(".", 2)[-1] if target.count(".") < 2 else \
        ".".join(target.rsplit(".", 2)[-2:])


@rule("purity-unpicklable", scope="project")
def check_unpicklable(files: List[ParsedFile], config: LintConfig,
                      project: ProjectModel) -> List[Finding]:
    """Submitted callables and arguments must survive pickling."""
    findings: List[Finding] = []
    for site in _submission_sites(project, config):
        module, fn = _caller_context(project, site.caller)
        scope = fn.qualname if fn is not None else MODULE_SCOPE
        lambdas, handles = _local_bindings(fn)
        local_names = (set(fn.params) | scope_locals(fn.node)
                       if fn is not None else set())
        target = _describe_target(project, site)
        args = list(site.node.args)
        if not args:
            continue

        def flag(message: str, node: ast.AST, fix: str) -> None:
            findings.append(Finding(
                rule="purity-unpicklable", path=site.relpath,
                line=getattr(node, "lineno", site.line), scope=scope,
                message=message, fixable=True, fix=fix))

        func_arg = args[0]
        if isinstance(func_arg, ast.Lambda):
            flag(f"lambda submitted to {target}() cannot pickle across "
                 "the process boundary", func_arg,
                 "hoist the lambda to a module-level function")
        elif isinstance(func_arg, ast.Name):
            if func_arg.id in lambdas:
                flag(f"{func_arg.id!r} is a lambda submitted to "
                     f"{target}(); lambdas cannot pickle across the "
                     "process boundary", func_arg,
                     "hoist the lambda to a module-level function")
            else:
                entry = _resolve_callable(project, module, site.caller,
                                          fn, func_arg)
                if entry is not None and project.functions[entry].is_nested:
                    flag(f"nested function {func_arg.id!r} submitted to "
                         f"{target}() closes over caller locals and "
                         "cannot pickle", func_arg,
                         "move the worker function to module level and "
                         "pass its inputs explicitly")
        elif isinstance(func_arg, ast.Attribute):
            base = func_arg.value
            bound = False
            if isinstance(base, ast.Name):
                if base.id == "self":
                    bound = True
                else:
                    local_type = project.local_types(module, fn).get(base.id)
                    bound = (local_type is not None
                             and local_type in project.classes)
                    if not bound and base.id in local_names:
                        bound = True  # instance held in a local
            if bound:
                flag(f"bound method {ast.unparse(func_arg)} submitted to "
                     f"{target}() pickles a snapshot of its instance; "
                     "parent-side mutations diverge", func_arg,
                     "submit a module-level function taking the state "
                     "explicitly")
        for arg in args[1:] + [kw.value for kw in site.node.keywords]:
            if isinstance(arg, ast.GeneratorExp):
                flag(f"generator argument to {target}() cannot pickle; "
                     "materialize it first", arg,
                     "wrap the generator in list(...)")
            elif isinstance(arg, ast.Name) and arg.id in handles:
                flag(f"open file handle {arg.id!r} passed to {target}(); "
                     "handles cannot cross the process boundary", arg,
                     "pass the path and open inside the worker")
    return findings


@rule("purity-global-mutation", scope="project")
def check_global_mutation(files: List[ParsedFile], config: LintConfig,
                          project: ProjectModel) -> List[Finding]:
    """No module-global mutation reachable from a worker entry point."""
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()
    for site in _submission_sites(project, config):
        module, fn = _caller_context(project, site.caller)
        if not site.node.args:
            continue
        entry = _resolve_callable(project, module, site.caller, fn,
                                  site.node.args[0])
        if entry is None or entry not in project.functions:
            continue
        entry_info = project.functions[entry]
        parents = project.reachable_from(entry)
        for reached in sorted(parents):
            for mutation in project.mutations.get(reached, []):
                key = (mutation.relpath, mutation.line, mutation.name)
                if key in seen:
                    continue
                seen.add(key)
                reached_info = project.functions.get(reached)
                scope = (reached_info.qualname if reached_info is not None
                         else reached)
                hops = [{"path": site.relpath, "line": site.line,
                         "detail": f"submitted {entry_info.qualname}() "
                                   "to a worker pool"}]
                for hop_site in project.chain_to(parents, reached):
                    callee_info = project.functions.get(
                        hop_site.callee or "")
                    callee_name = (callee_info.qualname
                                   if callee_info is not None
                                   else hop_site.callee or "?")
                    hops.append({"path": hop_site.relpath,
                                 "line": hop_site.line,
                                 "detail": f"calls {callee_name}()"})
                hops.append({"path": mutation.relpath,
                             "line": mutation.line,
                             "detail": mutation.detail})
                findings.append(Finding(
                    rule="purity-global-mutation", path=mutation.relpath,
                    line=mutation.line, scope=scope,
                    message=f"module global {mutation.name!r} is mutated "
                            f"in {scope}(), reachable from worker entry "
                            f"{entry_info.qualname}(); parallel runs "
                            "diverge from serial (the write lands in a "
                            "forked copy)",
                    fixable=True,
                    fix="thread the state through arguments/returns, or "
                        "suppress with # lint: disable="
                        "purity-global-mutation(reason)",
                    hops=hops))
    findings.sort(key=lambda finding: (finding.path, finding.line))
    return findings
