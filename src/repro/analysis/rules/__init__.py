"""Rule modules — importing this package registers every rule."""

from . import (determinism, excflow, hotpath, hygiene,  # noqa: F401
               layering, purity, taint)

__all__ = ["determinism", "excflow", "hotpath", "hygiene", "layering",
           "purity", "taint"]
