"""Rule modules — importing this package registers every rule."""

from . import determinism, hotpath, hygiene, layering  # noqa: F401

__all__ = ["determinism", "hotpath", "hygiene", "layering"]
