"""Hot-path discipline: the per-packet/per-byte loop stays lean.

``[tool.repro-lint.hotpath] functions`` registers the functions on the
encoder/decoder/cache/region/simulator hot path — the ones the
``benchmarks/bench_hotpath.py`` 1.5x gate times.  Inside them:

* no ``logging`` or ``print`` calls — the disabled-telemetry branch
  must cost one attribute load and an ``is None`` check, nothing more;
* no f-strings / ``str.format`` / ``%``-formatting outside a telemetry
  guard (``raise``/``assert`` messages are exempt: unwinding is
  already off the fast path);
* no comprehensions or generator expressions *inside a loop* — each
  iteration would allocate a fresh frame and list on the per-byte
  path;
* calls through a telemetry reference (``profiler``, ``verifier``,
  ...) must sit under an ``if <ref> is not None:`` guard of that same
  reference;
* telemetry attributes must not be re-read (``self.profiler``) inside
  a loop — hoist the load into a local before the loop, the PR-2/PR-3
  single-None-check pattern;
* span *creation* calls (``spans.begin`` / ``spans.packet_begin`` /
  ... — :data:`repro.metrics.spans.SPAN_CREATION_METHODS`) must not
  sit inside an inner loop: one span per packet is the contract, a
  span per byte/region would dominate the run being measured.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from ...metrics.spans import SPAN_CREATION_METHODS
from ..astutil import ParsedFile
from ..config import LintConfig
from ..findings import Finding
from ..project import ProjectModel
from ..registry import rule

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _guard_exprs(test: ast.AST, telemetry: Set[str]) -> Set[str]:
    """Telemetry references proven non-None by an ``if`` test.

    Recognises ``X is not None`` and conjunctions containing it, for
    ``X`` whose terminal name is a registered telemetry attribute.
    """
    guards: Set[str] = set()
    candidates = [test]
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        candidates = list(test.values)
    for candidate in candidates:
        if (isinstance(candidate, ast.Compare)
                and len(candidate.ops) == 1
                and isinstance(candidate.ops[0], ast.IsNot)
                and isinstance(candidate.comparators[0], ast.Constant)
                and candidate.comparators[0].value is None
                and _terminal_name(candidate.left) in telemetry):
            guards.add(ast.unparse(candidate.left))
    return guards


@dataclass
class _Scan:
    parsed: ParsedFile
    qualname: str
    telemetry: Set[str]
    findings: List[Finding] = field(default_factory=list)

    def add(self, rule_name: str, node: ast.AST, message: str,
            fixable: bool = False, fix: str = "") -> None:
        self.findings.append(Finding(
            rule=rule_name, path=self.parsed.relpath, line=node.lineno,
            col=node.col_offset, scope=self.qualname, message=message,
            fixable=fixable, fix=fix))

    # ------------------------------------------------------------------

    def scan(self, node: ast.AST, guards: Set[str], loops: int,
             raising: bool) -> None:
        for child in ast.iter_child_nodes(node):
            self.visit(child, guards, loops, raising)

    def visit(self, node: ast.AST, guards: Set[str], loops: int,
              raising: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs are their own (cold) scopes
        if isinstance(node, ast.If):
            new_guards = _guard_exprs(node.test, self.telemetry)
            self.visit(node.test, guards, loops, raising)
            for child in node.body:
                self.visit(child, guards | new_guards, loops, raising)
            for child in node.orelse:
                self.visit(child, guards, loops, raising)
            return
        if isinstance(node, (ast.For, ast.While)):
            if isinstance(node, ast.For):
                self.visit(node.target, guards, loops, raising)
                self.visit(node.iter, guards, loops, raising)
            else:
                self.visit(node.test, guards, loops, raising)
            for child in node.body + node.orelse:
                self.visit(child, guards, loops + 1, raising)
            return
        if isinstance(node, (ast.Raise, ast.Assert)):
            self.scan(node, guards, loops, raising=True)
            return
        if isinstance(node, _COMPREHENSIONS):
            if loops:
                self.add(
                    "hotpath-comprehension-in-loop", node,
                    "comprehension allocates inside a hot loop; hoist it "
                    "or accumulate into a preallocated structure",
                    fixable=True,
                    fix="restructure as an explicit append/update in the "
                        "existing loop, or hoist the allocation")
            self.scan(node, guards, loops, raising)
            return
        if isinstance(node, ast.JoinedStr):
            if not raising and not guards:
                self.add(
                    "hotpath-format", node,
                    "f-string formats on the hot path outside a telemetry "
                    "guard (it allocates even when telemetry is off)",
                    fixable=True,
                    fix="move the formatting under the `is not None` "
                        "telemetry guard or into the raise that uses it")
            # One finding per f-string: format specs parse as nested
            # JoinedStr nodes, so mark the interior as already reported.
            self.scan(node, guards, loops, raising=True)
            return
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod) \
                and isinstance(node.left, ast.Constant) \
                and isinstance(node.left.value, str):
            if not raising and not guards:
                self.add(
                    "hotpath-format", node,
                    "%-formatting on the hot path outside a telemetry "
                    "guard",
                    fixable=True,
                    fix="guard it behind the telemetry None-check or move "
                        "it off the hot path")
            self.scan(node, guards, loops, raising)
            return
        if isinstance(node, ast.Call):
            self._check_call(node, guards, loops, raising)
            self.scan(node, guards, loops, raising)
            return
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            if node.attr in self.telemetry and loops:
                self.add(
                    "hotpath-telemetry-load", node,
                    f"telemetry attribute .{node.attr} re-read inside a "
                    "hot loop; hoist it into a local before the loop "
                    "(single None-check discipline)",
                    fixable=True,
                    fix=f"bind `{node.attr} = {ast.unparse(node)}` before "
                        "the loop and test the local")
            self.scan(node, guards, loops, raising)
            return
        self.scan(node, guards, loops, raising)

    def _check_call(self, node: ast.Call, guards: Set[str], loops: int,
                    raising: bool) -> None:
        dotted = self.parsed.resolve_call(node.func)
        if dotted is not None and (dotted == "logging"
                                   or dotted.startswith("logging.")):
            self.add(
                "hotpath-logging", node,
                f"{dotted}() call on the hot path; even a disabled logger "
                "formats its arguments",
                fixable=True,
                fix="route through the telemetry/flight-recorder hooks "
                    "behind their None-check instead")
            return
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.add(
                "hotpath-logging", node,
                "print() call on the hot path",
                fixable=True,
                fix="use the telemetry hooks or drop the output")
            return
        # str.format on a literal
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "format" \
                and isinstance(node.func.value, ast.Constant) \
                and isinstance(node.func.value.value, str):
            if not raising and not guards:
                self.add(
                    "hotpath-format", node,
                    "str.format on the hot path outside a telemetry guard",
                    fixable=True,
                    fix="guard it behind the telemetry None-check")
            return
        # Calls through a telemetry reference must be guarded by the
        # exact same reference.
        if isinstance(node.func, ast.Attribute):
            base = node.func.value
            name = _terminal_name(base)
            if name in self.telemetry:
                if ast.unparse(base) not in guards:
                    self.add(
                        "hotpath-telemetry-guard", node,
                        f"call through telemetry reference "
                        f"{ast.unparse(base)} without an enclosing "
                        f"`if {ast.unparse(base)} is not None:` guard",
                        fixable=True,
                        fix="wrap the call in the single None-check the "
                            "bench_hotpath gate assumes")
                if node.func.attr in SPAN_CREATION_METHODS and loops:
                    self.add(
                        "hotpath-span-in-loop", node,
                        f"span creation .{node.func.attr}() inside a hot "
                        "loop; spans are per-packet, not per-iteration — "
                        "a span per byte/region would dominate the run "
                        "being measured",
                        fixable=True,
                        fix="create the span once before the loop and "
                            "attach aggregates as end() tags")


def _hot_functions_in(parsed: ParsedFile, config: LintConfig,
                      project: ProjectModel
                      ) -> Iterator[Tuple[str, ast.AST]]:
    if parsed.module is None:
        return
    wanted = set(config.hot_functions)
    for fn in project.functions.values():
        if fn.module == parsed.module and fn.id in wanted:
            yield fn.qualname, fn.node


@rule("hotpath-discipline")
def check_hotpath(parsed: ParsedFile, config: LintConfig,
                  project: ProjectModel) -> List[Finding]:
    """Registered hot functions obey the no-alloc/None-check rules.

    Emits findings under the specific rule ids
    ``hotpath-logging``/``hotpath-format``/
    ``hotpath-comprehension-in-loop``/``hotpath-telemetry-guard``/
    ``hotpath-telemetry-load``/``hotpath-span-in-loop`` (select them
    via the ``hotpath`` family).
    """
    telemetry = set(config.telemetry_attrs)
    findings: List[Finding] = []
    for qualname, fn_node in _hot_functions_in(parsed, config, project):
        scan = _Scan(parsed=parsed, qualname=qualname, telemetry=telemetry)
        assert isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for statement in fn_node.body:
            scan.visit(statement, guards=set(), loops=0, raising=False)
        findings.extend(scan.findings)
    return findings
