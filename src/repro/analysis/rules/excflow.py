"""Exception-flow: ``InvariantViolation`` must not be swallowed.

``InvariantViolation`` is the verification layer's alarm bell — an
online oracle or differential check has caught the simulation lying.
The whole point is that it aborts the run.  A ``try`` block that calls
(directly or transitively) into code that raises it and then catches
``InvariantViolation`` — or a blanket ``Exception`` — without
re-raising or even referencing the exception turns a correctness
alarm into silence.

Only the verification harness itself (``[tool.repro-lint.excflow]
allow-modules``, default ``repro.verify`` and ``repro.chaos``) may
catch-and-record violations as data.

The rule walks the shared call graph: functions raising
``InvariantViolation`` seed a may-raise set, propagated through
callers whose call sites are not already guarded by a catching
``try``; each conviction carries the call-chain hops from the ``try``
body down to the actual ``raise``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..astutil import ParsedFile
from ..config import LintConfig
from ..findings import Finding
from ..project import MODULE_SCOPE, CallSite, ProjectModel
from ..registry import rule

_VIOLATION = "InvariantViolation"
_CATCH_ALL = (_VIOLATION, "Exception", "BaseException")


def _exc_names(annotation: Optional[ast.expr]) -> List[str]:
    """Exception class names a handler's ``except X`` clause lists."""
    if annotation is None:
        return ["BaseException"]  # bare except
    if isinstance(annotation, ast.Tuple):
        names: List[str] = []
        for element in annotation.elts:
            names.extend(_exc_names(element))
        return names
    cursor = annotation
    while isinstance(cursor, ast.Attribute):
        if not isinstance(cursor.value, (ast.Attribute, ast.Name)):
            return []
        if isinstance(cursor.value, ast.Name):
            return [cursor.attr]
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        return [cursor.id]
    return []


def _catches_violation(handler: ast.ExceptHandler) -> bool:
    return any(name in _CATCH_ALL for name in _exc_names(handler.type))


def _raise_line(fn_node: ast.AST) -> Optional[int]:
    """Line of the first direct ``raise InvariantViolation`` in ``fn``."""
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        callee = exc.func if isinstance(exc, ast.Call) else exc
        name = None
        if isinstance(callee, ast.Name):
            name = callee.id
        elif isinstance(callee, ast.Attribute):
            name = callee.attr
        if name == _VIOLATION:
            return node.lineno
    return None


def _guarded_calls(fn_node: ast.AST) -> Set[int]:
    """``id()`` of every Call already inside a violation-catching try."""
    guarded: Set[int] = set()

    def visit(node: ast.AST, shielded: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            if isinstance(child, ast.Try):
                inner = shielded or any(_catches_violation(handler)
                                        for handler in child.handlers)
                for statement in child.body:
                    visit(statement, inner)
                for handler in child.handlers:
                    visit(handler, shielded)
                for statement in child.orelse + child.finalbody:
                    visit(statement, shielded)
                continue
            if shielded and isinstance(child, ast.Call):
                guarded.add(id(child))
            visit(child, shielded)

    visit(fn_node, False)
    return guarded


def _handler_rethrows(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or even references the error."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if handler.name is not None and isinstance(node, ast.Name) and \
                node.id == handler.name:
            return True
    return False


def _module_of(project: ProjectModel, owner: str) -> str:
    fn = project.functions.get(owner)
    if fn is not None:
        return fn.module
    return owner.rsplit("." + MODULE_SCOPE, 1)[0]


def _allowed(module: str, config: LintConfig) -> bool:
    return any(module == allowed or module.startswith(allowed + ".")
               for allowed in config.excflow_allow)


def _calls_in(body: List[ast.stmt]) -> Set[int]:
    call_ids: Set[int] = set()
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(node, ast.Call):
                call_ids.add(id(node))
    return call_ids


@rule("excflow-swallowed-violation", scope="project")
def check_swallowed_violation(files: List[ParsedFile], config: LintConfig,
                              project: ProjectModel) -> List[Finding]:
    """InvariantViolation must reach the top outside the harness."""
    raise_lines: Dict[str, int] = {}
    for fn_id, fn in project.functions.items():
        line = _raise_line(fn.node)
        if line is not None:
            raise_lines[fn_id] = line
    if not raise_lines:
        return []

    # Propagate may-raise through unguarded call sites to a fixpoint.
    guarded_by_fn: Dict[str, Set[int]] = {}

    def guarded(owner: str) -> Set[int]:
        cached = guarded_by_fn.get(owner)
        if cached is None:
            fn = project.functions.get(owner)
            cached = _guarded_calls(fn.node) if fn is not None else set()
            guarded_by_fn[owner] = cached
        return cached

    may_raise: Set[str] = set(raise_lines)
    changed = True
    while changed:
        changed = False
        for owner, sites in project.calls.items():
            if owner in may_raise:
                continue
            for site in sites:
                if site.callee in may_raise and \
                        id(site.node) not in guarded(owner):
                    may_raise.add(owner)
                    changed = True
                    break

    findings: List[Finding] = []
    for owner, records in sorted(project.tries.items()):
        module = _module_of(project, owner)
        if _allowed(module, config):
            continue
        owner_info = project.functions.get(owner)
        scope = owner_info.qualname if owner_info is not None else \
            MODULE_SCOPE
        sites = project.calls.get(owner, [])
        for record in records:
            swallowing = [handler for handler in record.node.handlers
                          if _catches_violation(handler)
                          and not _handler_rethrows(handler)]
            if not swallowing:
                continue
            body_calls = _calls_in(record.node.body)
            risky: Optional[CallSite] = None
            for site in sites:
                if id(site.node) in body_calls and \
                        site.callee in may_raise:
                    risky = site
                    break
            if risky is None:
                continue
            assert risky.callee is not None
            hops = [{"path": risky.relpath, "line": risky.line,
                     "detail": "call inside the try body"}]
            parents = project.reachable_from(risky.callee)
            target = _nearest_raiser(project, parents, risky.callee,
                                     raise_lines)
            if target is not None:
                for hop_site in project.chain_to(parents, target):
                    callee_info = project.functions.get(
                        hop_site.callee or "")
                    callee_name = (callee_info.qualname
                                   if callee_info is not None
                                   else hop_site.callee or "?")
                    hops.append({"path": hop_site.relpath,
                                 "line": hop_site.line,
                                 "detail": f"calls {callee_name}()"})
                raiser = project.functions[target]
                hops.append({"path": raiser.relpath,
                             "line": raise_lines[target],
                             "detail": f"raises {_VIOLATION} in "
                                       f"{raiser.qualname}()"})
            for handler in swallowing:
                caught = ", ".join(_exc_names(handler.type)) or "all"
                findings.append(Finding(
                    rule="excflow-swallowed-violation", path=record.relpath,
                    line=handler.lineno, scope=scope,
                    message=f"handler catching {caught} in {scope}() "
                            f"swallows a reachable {_VIOLATION} without "
                            "re-raising; a failed correctness oracle "
                            "would pass silently",
                    fixable=True,
                    fix=f"re-raise {_VIOLATION}, narrow the except "
                        "clause, or suppress with # lint: disable="
                        "excflow-swallowed-violation(reason)",
                    hops=hops))
    return findings


def _nearest_raiser(project: ProjectModel,
                    parents: Dict[str, Tuple[Optional[str],
                                             Optional[CallSite]]],
                    entry: str, raise_lines: Dict[str, int]
                    ) -> Optional[str]:
    if entry in raise_lines:
        return entry
    best: Optional[Tuple[int, str]] = None
    for candidate in parents:
        if candidate not in raise_lines:
            continue
        depth = len(project.chain_to(parents, candidate))
        if best is None or (depth, candidate) < best:
            best = (depth, candidate)
    return best[1] if best is not None else None
