"""Determinism-taint: nondeterminism must not reach serialized output.

The repo's bit-identity guarantee (serial == parallel sweeps, chaos
replays, fuzz ``--replay``) holds only if no wall-clock read, global
RNG draw, ``os.urandom`` byte or ``id()`` value ever flows into a
serialized report, cache key, bench JSON or telemetry export.  The
per-file determinism rules ban the *calls* in simulation modules; this
family tracks the *values* — through assignments, attribute and
container stores, returns, and calls up to a bounded depth — on a
whole-program dataflow graph built over the shared
:class:`~repro.analysis.project.ProjectModel`.

Sources (``[tool.repro-lint.taint] sources`` plus global-state RNG
draws and ``id()``-as-value) seed the graph; sinks (``sinks``; by
default the ``json``/``pickle`` serialization edges) terminate it.
Any source-to-sink path within ``max-hops`` becomes one
``taint-flow`` finding at the sink, carrying the full hop chain like
``repro spans`` does.

A ``# lint: disable=taint-flow(reason)`` pragma on the *source* line
kills every flow seeded there (an intentional report timestamp);, on
the *sink* line it suppresses that one flow endpoint.  Modules in
``determinism.allow-modules`` never seed sources (they are the
sanctioned wall-clock/RNG edges).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..astutil import ParsedFile
from ..config import LintConfig
from ..findings import Finding
from ..project import MODULE_SCOPE, FunctionInfo, ProjectModel, scope_locals
from ..registry import rule

#: Safe members of ``random``/``numpy.random`` (mirrors determinism.py).
_RANDOM_SAFE = {"random.Random", "random.SystemRandom", "random.getstate",
                "random.setstate", "random.seed"}
_NUMPY_SAFE = {"numpy.random.default_rng", "numpy.random.Generator",
               "numpy.random.SeedSequence", "numpy.random.RandomState",
               "numpy.random.PCG64", "numpy.random.Philox"}

Node = Tuple[str, ...]
Hop = Dict[str, Any]


@dataclass
class TaintTrace:
    """One source-to-sink flow, with the full hop chain."""

    source: Dict[str, Any]       # {"call", "path", "line", "scope"}
    sink: Dict[str, Any]
    hops: List[Hop]              # ordered source -> sink

    def to_dict(self) -> Dict[str, Any]:
        return {"source": dict(self.source), "sink": dict(self.sink),
                "hops": [dict(hop) for hop in self.hops]}


@dataclass
class _Endpoint:
    call: str
    path: str
    line: int
    col: int
    scope: str


@dataclass
class TaintGraph:
    """Value-flow graph: nodes are variables/attributes/returns."""

    edges: Dict[Node, List[Tuple[Node, Hop]]] = field(default_factory=dict)
    sources: Dict[Node, _Endpoint] = field(default_factory=dict)
    sinks: Dict[Node, _Endpoint] = field(default_factory=dict)

    def add_edge(self, src: Node, dst: Node, hop: Hop) -> None:
        if src != dst:
            self.edges.setdefault(src, []).append((dst, hop))


class _ScopeWalker:
    """Builds taint edges for one function (or module) scope."""

    def __init__(self, builder: "_GraphBuilder", parsed: ParsedFile,
                 fn: Optional[FunctionInfo], scope_id: str) -> None:
        self.builder = builder
        self.parsed = parsed
        self.fn = fn
        self.scope_id = scope_id
        self.module = parsed.module or ""
        self.qualname = fn.qualname if fn is not None else MODULE_SCOPE
        project = builder.project
        self.local_types = project.local_types(self.module, fn)
        if fn is not None:
            assert isinstance(fn.node, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))
            self.locals: Set[str] = set(fn.params) | \
                {arg.arg for arg in fn.node.args.kwonlyargs} | \
                scope_locals(fn.node)
        else:
            self.locals = set()

    # -- node helpers ------------------------------------------------------

    def _var(self, name: str) -> Optional[Node]:
        if self.fn is not None and name not in self.locals:
            globals_here = self.builder.project.module_globals.get(
                self.module, set())
            if name in globals_here:
                return ("var", f"{self.module}.{MODULE_SCOPE}", name)
            return None  # imported symbol / builtin: not a value cell
        return ("var", self.scope_id, name)

    def _hop(self, line: int, detail: str) -> Hop:
        return {"path": self.parsed.relpath, "line": line, "detail": detail}

    # -- statements --------------------------------------------------------

    def walk(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            self.statement(statement)

    def statement(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # separate scopes, walked on their own
        if isinstance(node, ast.Assign):
            values = self.evaluate(node.value)
            for target in node.targets:
                self.assign(target, values, node.lineno)
        elif isinstance(node, ast.AugAssign):
            values = self.evaluate(node.value)
            self.assign(node.target, values, node.lineno)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            values = self.evaluate(node.value)
            self.assign(node.target, values, node.lineno)
        elif isinstance(node, ast.Return) and node.value is not None:
            values = self.evaluate(node.value)
            for value in values:
                self.builder.graph.add_edge(
                    value, ("ret", self.scope_id),
                    self._hop(node.lineno,
                              f"returned from {self.qualname}()"))
        elif isinstance(node, ast.Expr):
            self.evaluate(node.value)
        elif isinstance(node, ast.For):
            iter_values = self.evaluate(node.iter)
            self.assign(node.target, iter_values, node.lineno)
            self.walk(node.body)
            self.walk(node.orelse)
        elif isinstance(node, ast.While):
            self.evaluate(node.test)
            self.walk(node.body)
            self.walk(node.orelse)
        elif isinstance(node, ast.If):
            self.evaluate(node.test)
            self.walk(node.body)
            self.walk(node.orelse)
        elif isinstance(node, ast.With):
            for item in node.items:
                values = self.evaluate(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, values, node.lineno)
            self.walk(node.body)
        elif isinstance(node, ast.Try):
            self.walk(node.body)
            for handler in node.handlers:
                self.walk(handler.body)
            self.walk(node.orelse)
            self.walk(node.finalbody)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self.evaluate(node.exc)
        elif isinstance(node, (ast.Assert, ast.Delete)):
            pass
        elif isinstance(node, ast.Match):
            self.evaluate(node.subject)
            for case in node.cases:
                self.walk(case.body)

    def assign(self, target: ast.expr, values: Set[Node],
               line: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.assign(element, values, line)
            return
        dst: Optional[Node] = None
        detail = ""
        if isinstance(target, ast.Name):
            dst = self._var(target.id)
            detail = f"assigned to {target.id}"
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self" and \
                    self.fn is not None and self.fn.class_id is not None:
                dst = ("attr", self.fn.class_id, target.attr)
                detail = f"stored on self.{target.attr}"
            else:
                dst = self._base_node(base)
                detail = f"stored on .{target.attr} of " \
                         f"{ast.unparse(base)}"
        elif isinstance(target, ast.Subscript):
            dst = self._base_node(target.value)
            detail = f"stored into {ast.unparse(target.value)}[...]"
        elif isinstance(target, ast.Starred):
            self.assign(target.value, values, line)
            return
        if dst is None:
            return
        for value in values:
            self.builder.graph.add_edge(value, dst, self._hop(line, detail))

    def _base_node(self, expr: ast.expr) -> Optional[Node]:
        """The storable cell a subscript/attribute store lands in."""
        cursor = expr
        while isinstance(cursor, (ast.Subscript, ast.Attribute)):
            if isinstance(cursor, ast.Attribute) and \
                    isinstance(cursor.value, ast.Name) and \
                    cursor.value.id == "self" and self.fn is not None and \
                    self.fn.class_id is not None:
                return ("attr", self.fn.class_id, cursor.attr)
            cursor = cursor.value
        if isinstance(cursor, ast.Name):
            return self._var(cursor.id)
        return None

    # -- expressions -------------------------------------------------------

    def evaluate(self, node: ast.expr) -> Set[Node]:
        """Nodes whose taint this expression's value would carry."""
        if isinstance(node, ast.Name):
            cell = self._var(node.id)
            return {cell} if cell is not None else set()
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id == "self" and \
                    self.fn is not None and self.fn.class_id is not None:
                attr_node: Node = ("attr", self.fn.class_id, node.attr)
                return {attr_node}
            return self.evaluate(base)
        if isinstance(node, ast.Call):
            return self.call(node)
        if isinstance(node, ast.Subscript):
            return self.evaluate(node.value)  # keys do not taint reads
        if isinstance(node, ast.BinOp):
            return self.evaluate(node.left) | self.evaluate(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.evaluate(node.operand)
        if isinstance(node, ast.BoolOp):
            out: Set[Node] = set()
            for value in node.values:
                out |= self.evaluate(value)
            return out
        if isinstance(node, ast.Compare):
            out = self.evaluate(node.left)
            for comparator in node.comparators:
                out |= self.evaluate(comparator)
            return out
        if isinstance(node, ast.IfExp):
            self.evaluate(node.test)
            return self.evaluate(node.body) | self.evaluate(node.orelse)
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.evaluate(value.value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.evaluate(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for element in node.elts:
                out |= self.evaluate(element)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for value in node.values:
                if value is not None:
                    out |= self.evaluate(value)
            return out
        if isinstance(node, ast.Starred):
            return self.evaluate(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for generator in node.generators:
                iter_values = self.evaluate(generator.iter)
                self.assign(generator.target, iter_values, node.lineno)
            out = set()
            if isinstance(node, ast.DictComp):
                out |= self.evaluate(node.value)
            else:
                out |= self.evaluate(node.elt)
            return out
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.evaluate(node.value)
        if isinstance(node, ast.Yield):
            return (self.evaluate(node.value)
                    if node.value is not None else set())
        if isinstance(node, ast.NamedExpr):
            values = self.evaluate(node.value)
            self.assign(node.target, values, node.lineno)
            return values
        return set()

    def call(self, node: ast.Call) -> Set[Node]:
        builder = self.builder
        project = builder.project
        callee, external = project.resolve_call_in(
            self.module, self.fn, self.local_types, node.func)
        dotted = external if external is not None else callee

        arg_values: List[Set[Node]] = [self.evaluate(arg)
                                       for arg in node.args]
        keyword_values: Dict[Optional[str], Set[Node]] = {
            keyword.arg: self.evaluate(keyword.value)
            for keyword in node.keywords}
        receiver: Set[Node] = set()
        if isinstance(node.func, ast.Attribute):
            receiver = self.evaluate(node.func.value)

        # Source calls seed the graph (sanctioned modules excepted).
        if external is not None and builder.is_source(external):
            if not builder.module_sanctioned(self.module):
                source_node: Node = ("source", external, self.parsed.relpath,
                                     str(node.lineno))
                builder.graph.sources[source_node] = _Endpoint(
                    call=external, path=self.parsed.relpath,
                    line=node.lineno, col=node.col_offset,
                    scope=self.qualname)
                return {source_node}
            return set()

        # Sink calls terminate it: every argument flows in.
        if dotted is not None and dotted in builder.sink_names:
            sink_node: Node = ("sink", dotted, self.parsed.relpath,
                               str(node.lineno))
            builder.graph.sinks[sink_node] = _Endpoint(
                call=dotted, path=self.parsed.relpath, line=node.lineno,
                col=node.col_offset, scope=self.qualname)
            hop = self._hop(node.lineno,
                            f"argument to sink {_short(dotted)}()")
            for values in arg_values + list(keyword_values.values()):
                for value in values:
                    builder.graph.add_edge(value, sink_node, hop)
            out: Set[Node] = set()
            for values in arg_values:
                out |= values
            return out

        # Known project function: bind arguments to parameters and
        # return the callee's return-value node.
        if callee is not None and callee in project.functions:
            info = project.functions[callee]
            params = list(info.params)
            positional = list(arg_values)
            hop = self._hop(node.lineno,
                            f"argument to {info.qualname}()")
            if params and params[0] in ("self", "cls") and \
                    isinstance(node.func, ast.Attribute):
                for value in receiver:
                    builder.graph.add_edge(
                        value, ("var", callee, params[0]), hop)
                params = params[1:]
            for name, values in zip(params, positional):
                for value in values:
                    builder.graph.add_edge(value, ("var", callee, name),
                                           hop)
            for key, values in keyword_values.items():
                if key is None:
                    continue
                for value in values:
                    builder.graph.add_edge(value, ("var", callee, key), hop)
            return {("ret", callee)}

        # Opaque / external call: taint passes through arguments and the
        # receiver; a mutating-shaped method call also taints its
        # receiver cell (``results.append(tainted)``).
        out = set(receiver)
        for values in arg_values:
            out |= values
        for values in keyword_values.values():
            out |= values
        if isinstance(node.func, ast.Attribute):
            target = self._base_node(node.func.value)
            if target is not None:
                hop = self._hop(
                    node.lineno,
                    f"stored via .{node.func.attr}() into "
                    f"{ast.unparse(node.func.value)}")
                for values in arg_values:
                    for value in values:
                        builder.graph.add_edge(value, target, hop)
        return out


class _GraphBuilder:
    def __init__(self, project: ProjectModel, config: LintConfig) -> None:
        self.project = project
        self.config = config
        self.graph = TaintGraph()
        self.sink_names = set(config.taint_sinks)
        self._source_names = set(config.taint_sources)

    def is_source(self, dotted: str) -> bool:
        if dotted in self._source_names:
            return True
        if dotted == "id":
            return True
        if dotted.startswith("random.") and dotted.count(".") == 1 and \
                dotted not in _RANDOM_SAFE:
            return True
        if dotted.startswith("numpy.random.") and dotted not in _NUMPY_SAFE:
            return True
        return False

    def module_sanctioned(self, module: str) -> bool:
        return any(module == allowed or module.startswith(allowed + ".")
                   for allowed in self.config.determinism_allow)

    def build(self) -> TaintGraph:
        for parsed in self.project.files:
            if parsed.module is None:
                continue
            module_scope = f"{parsed.module}.{MODULE_SCOPE}"
            walker = _ScopeWalker(self, parsed, None, module_scope)
            walker.walk(parsed.tree.body)
            for fn in self.project.functions.values():
                if fn.module != parsed.module:
                    continue
                assert isinstance(fn.node, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))
                walker = _ScopeWalker(self, parsed, fn, fn.id)
                walker.walk(fn.node.body)
        return self.graph


def trace_taint(project: ProjectModel, config: LintConfig
                ) -> List[TaintTrace]:
    """All bounded source-to-sink flows, each with its hop chain."""
    graph = _GraphBuilder(project, config).build()
    traces: List[TaintTrace] = []
    for source_node, source in sorted(
            graph.sources.items(),
            key=lambda item: (item[1].path, item[1].line)):
        parents = _bfs(graph, source_node, config.taint_max_hops)
        seen_sinks: Set[Node] = set()
        for sink_node, sink in sorted(
                graph.sinks.items(),
                key=lambda item: (item[1].path, item[1].line)):
            if sink_node not in parents or sink_node in seen_sinks:
                continue
            seen_sinks.add(sink_node)
            hops = _chain(parents, source_node, sink_node)
            traces.append(TaintTrace(
                source={"call": source.call, "path": source.path,
                        "line": source.line, "scope": source.scope},
                sink={"call": sink.call, "path": sink.path,
                      "line": sink.line, "scope": sink.scope},
                hops=hops))
    return traces


def _bfs(graph: TaintGraph, start: Node, max_hops: int
         ) -> Dict[Node, Tuple[Optional[Node], Optional[Hop]]]:
    parents: Dict[Node, Tuple[Optional[Node], Optional[Hop]]] = {
        start: (None, None)}
    frontier = [start]
    for _depth in range(max_hops):
        next_frontier: List[Node] = []
        for node in frontier:
            for dst, hop in graph.edges.get(node, []):
                if dst in parents:
                    continue
                parents[dst] = (node, hop)
                next_frontier.append(dst)
        if not next_frontier:
            break
        frontier = next_frontier
    return parents


def _chain(parents: Dict[Node, Tuple[Optional[Node], Optional[Hop]]],
           source: Node, sink: Node) -> List[Hop]:
    hops: List[Hop] = []
    cursor: Optional[Node] = sink
    while cursor is not None and cursor != source:
        parent, hop = parents[cursor]
        if hop is not None:
            hops.append(hop)
        cursor = parent
    hops.reverse()
    return hops


def _short(dotted: str) -> str:
    parts = dotted.rsplit(".", 2)
    return ".".join(parts[-2:]) if len(parts) > 1 else dotted


@rule("taint-flow", scope="project")
def check_taint_flow(files: List[ParsedFile], config: LintConfig,
                     project: ProjectModel) -> List[Finding]:
    """No nondeterministic value may reach a serialization sink.

    A ``taint-flow`` pragma on the *source* line suppresses every flow
    seeded there (checked here rather than at the engine's sink-line
    pragma pass); ``repro lint graph`` still exports the trace, so an
    intentionally suppressed flow stays inspectable.
    """
    by_path = {parsed.relpath: parsed for parsed in files}
    findings: List[Finding] = []
    for trace in trace_taint(project, config):
        source, sink = trace.source, trace.sink
        source_pragma = None
        source_file = by_path.get(str(source["path"]))
        if source_file is not None:
            for pragma in source_file.pragmas.get(int(source["line"]), []):
                if pragma.matches("taint-flow"):
                    source_pragma = pragma
                    break
        findings.append(Finding(
            rule="taint-flow", path=str(sink["path"]),
            line=int(sink["line"]), scope=str(sink["scope"]),
            message=f"nondeterministic {_short(str(source['call']))}() "
                    f"(seeded in {source['scope']}(), {source['path']}) "
                    f"flows into {_short(str(sink['call']))}() after "
                    f"{len(trace.hops)} hop(s); the serialized output is "
                    "no longer replay-stable",
            fixable=True,
            fix="derive the value from sim time / seeded streams, or "
                "suppress the seed line with "
                "# lint: disable=taint-flow(reason)",
            suppressed=source_pragma is not None,
            suppress_reason=(source_pragma.reason
                             if source_pragma is not None else ""),
            hops=[{"path": source["path"], "line": source["line"],
                   "detail": f"source {_short(str(source['call']))}()"}]
                 + trace.hops))
    return findings
