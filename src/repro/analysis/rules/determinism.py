"""Determinism rules: all randomness flows through named RNG streams.

Replayability is a load-bearing property of this repo: ``repro fuzz
--replay``, the shrinker, the serial-vs-parallel sweep differential
and the paired no-DRE baselines are only sound because every stochastic
draw comes from a named :class:`repro.sim.rng.RngRegistry` stream and
nothing reads the wall clock into results.  One stray module-level
``random.random()`` breaks all of them silently — it shifts global
state depending on call order — so the ban is static.

Allowed everywhere: seeded instances (``random.Random(seed)``,
``numpy.random.default_rng(seed)``) and monotonic profiling clocks
(``perf_counter`` feeds timing reports, never simulation results).
Exempt modules (``allow-modules``): the stream registry itself and the
CLI's user-facing edges.
"""

from __future__ import annotations

import ast
from typing import List

from ..astutil import ParsedFile
from ..config import LintConfig
from ..findings import Finding
from ..project import ProjectModel
from ..registry import rule

#: ``random``-module callables that are *not* global-state draws.
_RANDOM_SAFE = {"random.Random", "random.SystemRandom", "random.getstate",
                "random.setstate"}

#: Legacy ``numpy.random`` names that are safe: explicit generator and
#: seeding machinery rather than draws from the hidden global state.
_NUMPY_SAFE = {"numpy.random.default_rng", "numpy.random.Generator",
               "numpy.random.SeedSequence", "numpy.random.RandomState",
               "numpy.random.PCG64", "numpy.random.Philox"}


def _exempt(parsed: ParsedFile, config: LintConfig) -> bool:
    module = parsed.module
    if module is None:
        return False
    return any(module == allowed or module.startswith(allowed + ".")
               for allowed in config.determinism_allow)


@rule("determinism-global-random")
def check_global_random(parsed: ParsedFile, config: LintConfig,
                        project: ProjectModel) -> List[Finding]:
    """No module-level ``random.*`` draws (shared hidden state)."""
    if _exempt(parsed, config):
        return []
    findings: List[Finding] = []
    scopes = project.scopes(parsed)
    for node in ast.walk(parsed.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = parsed.resolve_call(node.func)
        if dotted is None:
            continue
        if dotted.startswith("random.") and dotted not in _RANDOM_SAFE \
                and dotted.count(".") == 1:
            findings.append(Finding(
                rule="determinism-global-random", path=parsed.relpath,
                line=node.lineno, col=node.col_offset,
                scope=scopes.get(id(node), ""),
                message=f"{dotted}() draws from the process-global RNG; "
                        "draw from a named RngRegistry stream "
                        "(repro.sim.rng) so runs stay replayable",
                fixable=True,
                fix="thread an rng / RngRegistry stream into this code "
                    "and call its bound methods"))
    return findings


@rule("determinism-wallclock")
def check_wallclock(parsed: ParsedFile, config: LintConfig,
                    project: ProjectModel) -> List[Finding]:
    """No wall-clock reads (``time.time``, ``datetime.now``, ...)."""
    if _exempt(parsed, config):
        return []
    banned = set(config.wallclock)
    findings: List[Finding] = []
    scopes = project.scopes(parsed)
    for node in ast.walk(parsed.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = parsed.resolve_call(node.func)
        if dotted is None:
            continue
        # ``from datetime import datetime; datetime.now()`` resolves to
        # datetime.datetime.now; ``datetime.date.today()`` similarly.
        if dotted in banned:
            findings.append(Finding(
                rule="determinism-wallclock", path=parsed.relpath,
                line=node.lineno, col=node.col_offset,
                scope=scopes.get(id(node), ""),
                message=f"{dotted}() reads the wall clock; simulated time "
                        "comes from Simulator.now and profiling from "
                        "perf_counter",
                fixable=True,
                fix="use sim.now for simulated time, perf_counter for "
                    "profiling, or pass the timestamp in from the CLI "
                    "edge"))
    return findings


@rule("determinism-numpy-global")
def check_numpy_global(parsed: ParsedFile, config: LintConfig,
                       project: ProjectModel) -> List[Finding]:
    """No unseeded ``numpy.random`` global-state draws."""
    if _exempt(parsed, config):
        return []
    findings: List[Finding] = []
    scopes = project.scopes(parsed)
    for node in ast.walk(parsed.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = parsed.resolve_call(node.func)
        if dotted is None or not dotted.startswith("numpy.random."):
            continue
        if dotted in _NUMPY_SAFE:
            continue
        findings.append(Finding(
            rule="determinism-numpy-global", path=parsed.relpath,
            line=node.lineno, col=node.col_offset,
            scope=scopes.get(id(node), ""),
            message=f"{dotted}() uses numpy's hidden global bit "
                    "generator; use RngRegistry.numpy_stream(name) "
                    "(numpy.random.default_rng under a derived seed)",
            fixable=True,
            fix="request a named generator via "
                "RngRegistry.numpy_stream(...)"))
    return findings
