"""Layering rules: the import DAG is architecture, enforced.

The layer order lives in ``[tool.repro-lint.layers]``: a module may
import repro modules whose layer ranks at or below its own.  That one
ordering encodes the repo's three standing prohibitions:

* ``core`` imports nothing from ``sim``/``net``/``gateway``/
  ``metrics``/``experiments`` — the codec must stay a pure library;
* ``sim`` imports nothing from ``net``/``gateway`` — the event engine
  and fault injector are substrate, not protocol;
* ``metrics`` sits *above* every instrumented layer, so gateways,
  links and stacks can only reach telemetry through duck-typed
  attributes (the PR-3 discipline), never an import.

Imports under ``if TYPE_CHECKING:`` are exempt: annotation-only
coupling does not exist at runtime and is how the lower layers keep
precise types without inverting the DAG.

Cycle detection reuses :class:`repro.metrics.depgraph.DependencyGraph`
— modules are nodes, layers are segment keys, and a layer-level import
cycle is exactly a :meth:`segment_cycles` hit on the folded graph.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ...metrics.depgraph import DependencyGraph
from ..astutil import ParsedFile
from ..config import LintConfig
from ..findings import Finding
from ..project import ProjectModel
from ..registry import rule


def _project_modules(project: ProjectModel) -> Set[str]:
    return set(project.modules)


@rule("layering-import", scope="project", fixable=True)
def check_import_dag(files: List[ParsedFile], config: LintConfig,
                     project: ProjectModel) -> List[Finding]:
    """A module may only import repro layers at or below its own."""
    findings: List[Finding] = []
    known = _project_modules(project)
    prefix = config.package + "."
    for parsed in files:
        if parsed.module is None:
            continue  # benchmarks etc. sit outside the DAG
        source_rank = config.layer_rank(parsed.module)
        if source_rank is None:
            findings.append(Finding(
                rule="layering-import", path=parsed.relpath, line=1,
                message=f"module {parsed.module} has no layer: add it to "
                        "[tool.repro-lint.layers] order or assign"))
            continue
        source_layer = config.layer_of(parsed.module)
        for edge in parsed.import_edges(known):
            if edge.type_checking:
                continue
            if edge.target != config.package and \
                    not edge.target.startswith(prefix):
                continue
            target_rank = config.layer_rank(edge.target)
            if target_rank is None:
                findings.append(Finding(
                    rule="layering-import", path=parsed.relpath,
                    line=edge.line,
                    message=f"import of {edge.target} has no layer: add "
                            "it to [tool.repro-lint.layers]"))
                continue
            if target_rank > source_rank:
                target_layer = config.layer_of(edge.target)
                findings.append(Finding(
                    rule="layering-import", path=parsed.relpath,
                    line=edge.line,
                    message=f"{source_layer!r} layer imports {edge.target} "
                            f"from the higher {target_layer!r} layer",
                    fixable=True,
                    fix="depend on the lower layer instead: move the "
                        "shared code down, reference it via a duck-typed "
                        "attribute, or gate a type-only import under "
                        "TYPE_CHECKING"))
    return findings


@rule("layering-cycle", scope="project")
def check_layer_cycles(files: List[ParsedFile], config: LintConfig,
                       project: ProjectModel) -> List[Finding]:
    """No import cycles between layers (folded module graph)."""
    graph = DependencyGraph()
    prefix = config.package + "."
    known = _project_modules(project)
    file_of: Dict[str, str] = {}
    for parsed in files:
        if parsed.module is None:
            continue
        layer = config.layer_of(parsed.module)
        if layer is None:
            continue  # reported by layering-import already
        file_of[layer] = file_of.get(layer, parsed.relpath)
        deps = {edge.target for edge in parsed.import_edges(known)
                if not edge.type_checking
                and (edge.target == config.package
                     or edge.target.startswith(prefix))}
        graph.add_node(parsed.module, deps, segment=layer)
    findings: List[Finding] = []
    for cycle in graph.segment_cycles():
        if len(cycle) == 1:
            continue  # intra-layer imports are free
        names = " -> ".join(str(layer) for layer in cycle)
        findings.append(Finding(
            rule="layering-cycle", path=file_of.get(cycle[0], "pyproject.toml"),
            line=1, scope=str(cycle[0]),
            message=f"import cycle between layers: {names} -> {cycle[0]}"))
    return findings
