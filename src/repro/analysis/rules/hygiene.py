"""Robustness hygiene: failure-handling anti-patterns.

The verification subsystem (PR 4) only works if violations travel:
an ``except`` that silently swallows :class:`InvariantViolation`
converts a caught livelock into a green run.  Bare ``except:`` and
mutable default arguments are the classic Python footguns that have
already caused real divergence bugs in cache/policy code elsewhere.
"""

from __future__ import annotations

import ast
import subprocess
from typing import List

from ..astutil import ParsedFile
from ..config import LintConfig
from ..findings import Finding
from ..project import ProjectModel
from ..registry import rule

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}


@rule("hygiene-bare-except")
def check_bare_except(parsed: ParsedFile, config: LintConfig,
                      project: ProjectModel) -> List[Finding]:
    """No bare ``except:`` — it catches KeyboardInterrupt/SystemExit."""
    findings: List[Finding] = []
    scopes = project.scopes(parsed)
    for node in ast.walk(parsed.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(Finding(
                rule="hygiene-bare-except", path=parsed.relpath,
                line=node.lineno, col=node.col_offset,
                scope=scopes.get(id(node), ""),
                message="bare except: catches KeyboardInterrupt and "
                        "SystemExit; name the exceptions you mean",
                fixable=True, fix="catch Exception (or narrower)"))
    return findings


@rule("hygiene-mutable-default")
def check_mutable_default(parsed: ParsedFile, config: LintConfig,
                          project: ProjectModel) -> List[Finding]:
    """No mutable default arguments (shared across calls)."""
    findings: List[Finding] = []
    scopes = project.scopes(parsed)
    for node in ast.walk(parsed.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
                and not default.args and not default.keywords)
            if mutable:
                findings.append(Finding(
                    rule="hygiene-mutable-default", path=parsed.relpath,
                    line=default.lineno, col=default.col_offset,
                    scope=scopes.get(id(node), node.name),
                    message=f"mutable default argument in {node.name}(); "
                            "the object is shared across every call",
                    fixable=True,
                    fix="default to None and create the container in the "
                        "body (or use an immutable default)"))
    return findings


@rule("hygiene-tracked-bytecode", scope="project")
def check_tracked_bytecode(files: List[ParsedFile], config: LintConfig,
                           project: ProjectModel) -> List[Finding]:
    """No compiled bytecode committed to the repository.

    ``.pyc`` files are interpreter- and timestamp-specific build
    artifacts; tracking them guarantees noisy diffs and platform skew.
    Outside a git checkout (synthetic test trees) the rule is silent.
    """
    try:
        listing = subprocess.run(
            ["git", "ls-files", "--cached", "-z",
             "*.pyc", "*.pyo", "*__pycache__*"],
            cwd=config.root, capture_output=True, text=True, timeout=30)
    except (FileNotFoundError, subprocess.SubprocessError, OSError):
        return []
    if listing.returncode != 0:
        return []  # not a git checkout
    findings: List[Finding] = []
    for tracked in sorted(p for p in listing.stdout.split("\0") if p):
        findings.append(Finding(
            rule="hygiene-tracked-bytecode", path=tracked, line=1,
            message="compiled bytecode is tracked by git; build "
                    "artifacts never belong in the repository",
            fixable=True,
            fix="git rm --cached the file and keep __pycache__/ and "
                "*.pyc in .gitignore"))
    return findings


def _names_invariant_violation(type_node: ast.AST) -> bool:
    if isinstance(type_node, ast.Tuple):
        return any(_names_invariant_violation(element)
                   for element in type_node.elts)
    name = None
    if isinstance(type_node, ast.Name):
        name = type_node.id
    elif isinstance(type_node, ast.Attribute):
        name = type_node.attr
    return name in ("InvariantViolation", "Exception", "BaseException")


@rule("hygiene-swallowed-violation")
def check_swallowed_violation(parsed: ParsedFile, config: LintConfig,
                              project: ProjectModel) -> List[Finding]:
    """No handler that silently swallows InvariantViolation.

    Flags ``except InvariantViolation`` (or a broad ``except
    Exception``/``BaseException``, which would swallow it too) whose
    body does nothing but ``pass``/``...``/``continue`` — a caught
    oracle trip must be re-raised, recorded, or acted on.
    """
    findings: List[Finding] = []
    scopes = project.scopes(parsed)
    for node in ast.walk(parsed.tree):
        if not isinstance(node, ast.ExceptHandler) or node.type is None:
            continue
        if not _names_invariant_violation(node.type):
            continue
        trivial = all(
            isinstance(statement, (ast.Pass, ast.Continue)) or (
                isinstance(statement, ast.Expr)
                and isinstance(statement.value, ast.Constant)
                and statement.value.value is Ellipsis)
            for statement in node.body)
        if trivial:
            caught = ast.unparse(node.type)
            findings.append(Finding(
                rule="hygiene-swallowed-violation", path=parsed.relpath,
                line=node.lineno, col=node.col_offset,
                scope=scopes.get(id(node), ""),
                message=f"except {caught}: pass would silently swallow an "
                        "InvariantViolation; re-raise it, record it, or "
                        "narrow the catch",
                fixable=True,
                fix="re-raise InvariantViolation (or handle it "
                    "explicitly) before discarding other errors"))
    return findings
