"""Rule registry.

Rules self-register via the :func:`rule` decorator.  A rule is a plain
function; its scope decides the call signature:

* ``scope="file"`` — called once per parsed file:
  ``fn(parsed: ParsedFile, config: LintConfig,
  project: ProjectModel) -> List[Finding]``
* ``scope="project"`` — called once with every parsed file:
  ``fn(files: List[ParsedFile], config: LintConfig,
  project: ProjectModel) -> List[Finding]``

Each file is parsed exactly once by the engine, and the
:class:`~repro.analysis.project.ProjectModel` (symbol table + call
graph + effect records) is built exactly once per run; every rule
shares both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    name: str
    scope: str            # "file" | "project"
    description: str
    fixable: bool
    fn: Callable

    @property
    def family(self) -> str:
        return self.name.split("-", 1)[0]


RULES: Dict[str, Rule] = {}


def rule(name: str, scope: str = "file", fixable: bool = False
         ) -> Callable[[Callable], Callable]:
    """Register a rule function under ``name``."""
    if scope not in ("file", "project"):
        raise ValueError(f"unknown rule scope: {scope!r}")

    def decorate(fn: Callable) -> Callable:
        if name in RULES:
            raise ValueError(f"duplicate rule name: {name!r}")
        RULES[name] = Rule(name=name, scope=scope,
                           description=(fn.__doc__ or "").strip().splitlines()[0]
                           if fn.__doc__ else "",
                           fixable=fixable, fn=fn)
        return fn

    return decorate


def select_rules(selectors: Optional[Iterable[str]] = None) -> List[Rule]:
    """Resolve ``--select`` patterns (rule ids or family prefixes)."""
    rules = sorted(RULES.values(), key=lambda r: r.name)
    if not selectors:
        return rules
    wanted = [s.strip() for s in selectors if s.strip()]
    unknown = [s for s in wanted
               if not any(r.name == s or r.family == s for r in rules)]
    if unknown:
        known = sorted({r.family for r in rules} | set(RULES))
        raise ValueError(f"unknown rule selector(s) {unknown}; "
                         f"known: {', '.join(known)}")
    return [r for r in rules
            if any(r.name == s or r.family == s for s in wanted)]
