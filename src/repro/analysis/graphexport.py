"""``repro lint graph`` — dump the call graph and taint traces.

Emits a ``repro.lintgraph/v1`` JSON document: every project function
with its resolved call edges (project callees, external dotted
targets, and the opaque-call count the model refused to guess at),
every class with its inferred attribute types, and every bounded
determinism-taint trace with the full source-to-sink hop chain — the
same chains ``taint-flow`` findings carry, exported standalone so a
flow can be inspected without tripping the lint gate.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional

from .config import LintConfig, load_config
from .engine import collect_files, parse_file
from .findings import Finding
from .project import ProjectModel
from .rules.taint import trace_taint

LINTGRAPH_SCHEMA = "repro.lintgraph/v1"


def build_project(root: Path, config: Optional[LintConfig] = None
                  ) -> ProjectModel:
    """Parse the tree at ``root`` and build its project model."""
    config = config if config is not None else load_config(root)
    parsed_files = []
    for path in collect_files(config):
        try:
            parsed_files.append(parse_file(path, config))
        except SyntaxError:
            continue  # the lint gate reports these; the graph skips them
    return ProjectModel(parsed_files, config)


def build_lintgraph(root: Path, config: Optional[LintConfig] = None
                    ) -> Dict[str, Any]:
    """The full ``repro.lintgraph/v1`` document for the tree."""
    config = config if config is not None else load_config(root)
    project = build_project(root, config)
    traces = trace_taint(project, config)

    functions: List[Dict[str, Any]] = []
    edge_count = 0
    opaque_count = 0
    for fn_id in sorted(project.functions):
        fn = project.functions[fn_id]
        calls: List[Dict[str, Any]] = []
        for site in project.calls.get(fn_id, []):
            if site.callee is not None:
                calls.append({"callee": site.callee, "line": site.line})
                edge_count += 1
            elif site.external is not None:
                calls.append({"external": site.external, "line": site.line})
                edge_count += 1
            else:
                opaque_count += 1
        functions.append({
            "id": fn.id,
            "module": fn.module,
            "qualname": fn.qualname,
            "path": fn.relpath,
            "line": fn.line,
            "class": fn.class_id,
            "nested": fn.is_nested,
            "params": list(fn.params),
            "calls": calls,
        })

    classes: List[Dict[str, Any]] = []
    for cls_id in sorted(project.classes):
        cls = project.classes[cls_id]
        classes.append({
            "id": cls.id,
            "module": cls.module,
            "path": cls.relpath,
            "line": cls.line,
            "bases": list(cls.bases),
            "methods": dict(sorted(cls.methods.items())),
            "attr_types": dict(sorted(cls.attr_types.items())),
        })

    return {
        "schema": LINTGRAPH_SCHEMA,
        "modules": sorted(project.modules),
        "functions": functions,
        "classes": classes,
        "taint": {
            "sources": list(config.taint_sources),
            "sinks": list(config.taint_sinks),
            "max_hops": config.taint_max_hops,
            "traces": [trace.to_dict() for trace in traces],
        },
        "counts": {
            "modules": len(project.modules),
            "functions": len(functions),
            "classes": len(classes),
            "call_edges": edge_count,
            "opaque_calls": opaque_count,
            "taint_traces": len(traces),
        },
    }


def validate_lintgraph(payload: Dict[str, Any]) -> None:
    """Validate a ``repro.lintgraph/v1`` document; raises ``ValueError``."""
    def fail(message: str) -> None:
        raise ValueError(f"invalid {LINTGRAPH_SCHEMA} document: {message}")

    if not isinstance(payload, dict):
        fail("not an object")
    if payload.get("schema") != LINTGRAPH_SCHEMA:
        fail(f"schema is {payload.get('schema')!r}")
    counts = payload.get("counts")
    if not isinstance(counts, dict):
        fail("missing counts object")
    for key in ("modules", "functions", "classes", "call_edges",
                "opaque_calls", "taint_traces"):
        if not isinstance(counts.get(key), int):
            fail(f"counts.{key} missing or not an int")
    functions = payload.get("functions")
    if not isinstance(functions, list):
        fail("functions is not a list")
    if counts["functions"] != len(functions):
        fail("counts.functions does not match functions length")
    for index, fn in enumerate(functions):
        if not isinstance(fn, dict):
            fail(f"functions[{index}] is not an object")
        for key in ("id", "module", "qualname", "path", "line", "calls"):
            if key not in fn:
                fail(f"functions[{index}] missing {key!r}")
        for edge in fn["calls"]:
            if not isinstance(edge, dict) or \
                    ("callee" not in edge) == ("external" not in edge):
                fail(f"functions[{index}] has a malformed call edge")
    taint = payload.get("taint")
    if not isinstance(taint, dict) or \
            not isinstance(taint.get("traces"), list):
        fail("taint.traces missing")
    if counts["taint_traces"] != len(taint["traces"]):
        fail("counts.taint_traces does not match traces length")
    for index, trace in enumerate(taint["traces"]):
        if not isinstance(trace, dict):
            fail(f"taint.traces[{index}] is not an object")
        for key in ("source", "sink", "hops"):
            if key not in trace:
                fail(f"taint.traces[{index}] missing {key!r}")
        for endpoint in (trace["source"], trace["sink"]):
            if not isinstance(endpoint, dict) or \
                    not {"call", "path", "line"} <= set(endpoint):
                fail(f"taint.traces[{index}] has a malformed endpoint")
        for hop in trace["hops"]:
            if not isinstance(hop, dict) or \
                    not {"path", "line", "detail"} <= set(hop):
                fail(f"taint.traces[{index}] has a malformed hop")


def format_graph_text(payload: Dict[str, Any]) -> str:
    """Condensed human-readable view: counts plus each taint trace."""
    counts = payload["counts"]
    lines = [
        f"project: {counts['modules']} modules, "
        f"{counts['functions']} functions, {counts['classes']} classes, "
        f"{counts['call_edges']} resolved call edges "
        f"({counts['opaque_calls']} opaque)",
        f"taint: {counts['taint_traces']} source->sink "
        f"trace{'s' if counts['taint_traces'] != 1 else ''}",
    ]
    for trace in payload["taint"]["traces"]:
        source, sink = trace["source"], trace["sink"]
        lines.append(f"  {source['call']} @ {source['path']}:"
                     f"{source['line']} -> {sink['call']} @ "
                     f"{sink['path']}:{sink['line']} "
                     f"({len(trace['hops'])} hops)")
        for index, hop in enumerate(trace["hops"]):
            lines.append(f"    hop {index}: {hop['path']}:{hop['line']}  "
                         f"{hop['detail']}")
    return "\n".join(lines)


def finding_hops_valid(finding: Finding) -> bool:
    """True when a finding's hop chain is structurally well-formed."""
    return all(isinstance(hop, dict)
               and {"path", "line", "detail"} <= set(hop)
               for hop in finding.hops)
