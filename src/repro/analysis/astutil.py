"""Shared AST helpers: one parse per file, import resolution, scopes.

:class:`ParsedFile` is the unit every rule consumes — the engine
parses each source file exactly once and hands the same tree to all
rules, as the per-file work is dominated by ``ast.parse``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .findings import Finding
from .pragmas import Pragma


@dataclass
class ImportEdge:
    """One runtime import statement, resolved to a dotted module."""

    target: str            # dotted module actually imported
    line: int
    type_checking: bool    # gated under ``if TYPE_CHECKING:``


@dataclass
class ParsedFile:
    """One source file, parsed once and shared by every rule."""

    path: str              # absolute path on disk
    relpath: str           # repo-root-relative, posix separators
    module: Optional[str]  # dotted module for files under a package root
    is_package: bool       # True for __init__.py
    text: str
    tree: ast.Module
    pragmas: Dict[int, List[Pragma]] = field(default_factory=dict)
    pragma_findings: List[Finding] = field(default_factory=list)

    #: Alias maps for resolving dotted call targets (built lazily).
    _module_aliases: Optional[Dict[str, str]] = None
    _symbol_aliases: Optional[Dict[str, str]] = None

    def import_edges(self, known_modules: Set[str]) -> List[ImportEdge]:
        """Every import in the file, resolved to dotted module names.

        ``from pkg import name`` resolves to ``pkg.name`` when that is
        a known module (importing a submodule), else to ``pkg`` (the
        symbol lives in ``pkg``).  Imports under ``if TYPE_CHECKING:``
        are marked so layering can exempt annotation-only coupling.
        """
        edges: List[ImportEdge] = []
        type_checking_nodes = _type_checking_descendants(self.tree)
        for node in ast.walk(self.tree):
            gated = id(node) in type_checking_nodes
            if isinstance(node, ast.Import):
                for alias in node.names:
                    edges.append(ImportEdge(alias.name, node.lineno, gated))
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    candidate = f"{base}.{alias.name}" if base else alias.name
                    target = candidate if candidate in known_modules else base
                    if target:
                        edges.append(ImportEdge(target, node.lineno, gated))
        return edges

    def _resolve_from_base(self, node: ast.ImportFrom) -> Optional[str]:
        """Dotted module a ``from ... import`` statement reads from."""
        if node.level == 0:
            return node.module or ""
        if self.module is None:
            return None
        # Relative import: chop (level - 1) trailing segments off the
        # containing package (the module's own package for plain
        # modules, the module itself for __init__.py).
        parts = self.module.split(".")
        if not self.is_package:
            parts = parts[:-1]
        chop = node.level - 1
        if chop:
            if chop >= len(parts):
                return None
            parts = parts[:-chop]
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts)

    # -- dotted-call resolution ------------------------------------------

    def resolve_call(self, func: ast.AST) -> Optional[str]:
        """Resolve a call target to a dotted path via the import maps.

        ``np.random.rand`` -> ``numpy.random.rand``; ``randint`` (after
        ``from random import randint``) -> ``random.randint``; a method
        call on a non-imported object resolves to ``None``.
        """
        self._ensure_aliases()
        assert self._module_aliases is not None
        assert self._symbol_aliases is not None
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        head = node.id
        if head in self._module_aliases:
            return ".".join([self._module_aliases[head]] + parts)
        if head in self._symbol_aliases:
            return ".".join([self._symbol_aliases[head]] + parts)
        return None

    def _ensure_aliases(self) -> None:
        if self._module_aliases is not None:
            return
        modules: Dict[str, str] = {}
        symbols: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c``
                    # binds ``c`` to ``a.b``.
                    modules[bound] = alias.name if alias.asname else alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module is None:
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    symbols[bound] = f"{node.module}.{alias.name}"
        self._module_aliases = modules
        self._symbol_aliases = symbols


def _type_checking_descendants(tree: ast.Module) -> Set[int]:
    """ids of all nodes inside ``if TYPE_CHECKING:`` blocks."""
    gated: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING")
        if not is_tc:
            continue
        for child in node.body:
            for descendant in ast.walk(child):
                gated.add(id(descendant))
    return gated


def walk_functions(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(qualname, node)`` for every function/method in a module.

    Qualnames use ``Class.method`` / ``function`` / ``outer.inner``
    forms, matching the dotted tails of registered hot-path entries.
    """

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")

    yield from visit(tree, "")


def enclosing_scopes(tree: ast.Module) -> Dict[int, str]:
    """Map node id -> qualified name of its innermost enclosing
    function/method (for baseline-stable finding scopes)."""
    scopes: Dict[int, str] = {}
    for qualname, fn_node in walk_functions(tree):
        for descendant in ast.walk(fn_node):
            scopes[id(descendant)] = qualname
    return scopes
