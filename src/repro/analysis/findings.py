"""Lint findings and the ``repro.lint/v1`` report schema.

A :class:`Finding` is one rule violation pinned to a file location.
Findings carry a *fingerprint* — a stable hash over everything except
line/column numbers — so the committed baseline survives unrelated
edits that shift code around (the ratchet suppresses by fingerprint,
never by line).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List

LINT_SCHEMA = "repro.lint/v1"

#: Rule families, in report order.
FAMILIES = ("layering", "determinism", "taint", "purity", "excflow",
            "hotpath", "hygiene", "pragma")


@dataclass
class Finding:
    """One rule violation.

    ``scope`` is the enclosing qualified name (``Class.method`` or a
    function name) when the violation sits inside one — it anchors the
    baseline fingerprint so findings survive line renumbering.
    """

    rule: str
    path: str                      # repo-root-relative, posix separators
    line: int
    message: str
    col: int = 0
    scope: str = ""
    fixable: bool = False
    fix: str = ""                  # suggested remedy, for fixable findings
    baselined: bool = False        # suppressed by the committed baseline
    suppressed: bool = False       # suppressed by an inline pragma
    suppress_reason: str = ""      # the pragma's mandatory reason
    #: Interprocedural findings carry the full source->sink hop chain
    #: (``{"path", "line", "detail"}`` per hop), like ``repro spans``.
    hops: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def family(self) -> str:
        return self.rule.split("-", 1)[0]

    @property
    def active(self) -> bool:
        """True when this finding should fail the run."""
        return not (self.baselined or self.suppressed)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (no line numbers)."""
        text = "|".join((self.rule, self.path, self.scope, self.message))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "scope": self.scope,
            "message": self.message,
            "fingerprint": self.fingerprint(),
            "fixable": self.fixable,
            "baselined": self.baselined,
            "suppressed": self.suppressed,
        }
        if self.fix:
            payload["fix"] = self.fix
        if self.suppress_reason:
            payload["suppress_reason"] = self.suppress_reason
        if self.hops:
            payload["hops"] = list(self.hops)
        return payload


@dataclass
class LintReport:
    """Everything one engine run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)
    stale_baseline: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def to_dict(self) -> Dict[str, Any]:
        ordered = sorted(
            self.findings,
            key=lambda f: (f.path, f.line, f.col, f.rule))
        return {
            "schema": LINT_SCHEMA,
            "files_checked": self.files_checked,
            "rules_run": sorted(self.rules_run),
            "counts": {
                "total": len(self.findings),
                "active": len(self.active),
                "baselined": sum(1 for f in self.findings if f.baselined),
                "suppressed": sum(1 for f in self.findings if f.suppressed),
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [f.to_dict() for f in ordered],
            "stale_baseline": list(self.stale_baseline),
        }


def validate_lint_report(payload: Dict[str, Any]) -> None:
    """Validate a ``repro.lint/v1`` document; raises ``ValueError``."""
    def fail(message: str) -> None:
        raise ValueError(f"invalid {LINT_SCHEMA} document: {message}")

    if not isinstance(payload, dict):
        fail("not an object")
    if payload.get("schema") != LINT_SCHEMA:
        fail(f"schema is {payload.get('schema')!r}")
    counts = payload.get("counts")
    if not isinstance(counts, dict):
        fail("missing counts object")
    for key in ("total", "active", "baselined", "suppressed"):
        if not isinstance(counts.get(key), int):
            fail(f"counts.{key} missing or not an int")
    findings = payload.get("findings")
    if not isinstance(findings, list):
        fail("findings is not a list")
    if counts["total"] != len(findings):
        fail("counts.total does not match findings length")
    for index, finding in enumerate(findings):
        if not isinstance(finding, dict):
            fail(f"findings[{index}] is not an object")
        for key in ("rule", "family", "path", "line", "message",
                    "fingerprint"):
            if key not in finding:
                fail(f"findings[{index}] missing {key!r}")
        if finding["family"] not in FAMILIES:
            fail(f"findings[{index}] has unknown family "
                 f"{finding['family']!r}")
        if not isinstance(finding["line"], int):
            fail(f"findings[{index}].line is not an int")
    active = [f for f in findings
              if not (f.get("baselined") or f.get("suppressed"))]
    if counts["active"] != len(active):
        fail("counts.active does not match findings flags")
