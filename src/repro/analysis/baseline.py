"""Baseline ratchet: pre-existing findings shrink, never grow.

The committed baseline file records the fingerprints of findings that
predate a rule.  On a normal run, findings matching the baseline are
reported but do not fail the build; *new* findings do.  A finding that
gets fixed leaves a *stale* baseline entry, pruned by rewriting the
file with ``repro lint --write-baseline`` — so over time the file can
only shrink (code review guards the rewrite direction).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Tuple

from .findings import Finding

BASELINE_SCHEMA = "repro.lint-baseline/v1"


def load_baseline(path: Path) -> List[Dict[str, Any]]:
    """Read baseline entries; a missing file is an empty baseline."""
    if not path.is_file():
        return []
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path} is not a {BASELINE_SCHEMA} document")
    entries = payload.get("entries", [])
    if not isinstance(entries, list):
        raise ValueError(f"{path}: entries is not a list")
    return entries


def apply_baseline(findings: List[Finding],
                   entries: List[Dict[str, Any]]
                   ) -> Tuple[List[Finding], List[Dict[str, Any]]]:
    """Mark baselined findings; return (findings, stale entries).

    Each entry suppresses up to ``count`` findings with the same
    fingerprint.  Entries left with unused budget are *stale*: the
    finding they recorded has been fixed and the entry should be
    pruned with ``--write-baseline``.
    """
    budget: Counter = Counter()
    for entry in entries:
        fingerprint = entry.get("fingerprint")
        if isinstance(fingerprint, str):
            budget[fingerprint] += int(entry.get("count", 1))
    for finding in findings:
        if finding.suppressed:
            continue
        fingerprint = finding.fingerprint()
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
            finding.baselined = True
    stale = []
    for entry in entries:
        fingerprint = entry.get("fingerprint")
        if isinstance(fingerprint, str) and budget.get(fingerprint, 0) > 0:
            stale.append(dict(entry, unmatched=budget[fingerprint]))
            budget[fingerprint] = 0
    return findings, stale


def write_baseline(path: Path, findings: List[Finding]) -> int:
    """Record every active finding as a baseline entry; returns count."""
    grouped: Dict[str, Dict[str, Any]] = {}
    for finding in findings:
        if finding.suppressed:
            continue
        fingerprint = finding.fingerprint()
        if fingerprint in grouped:
            grouped[fingerprint]["count"] += 1
        else:
            grouped[fingerprint] = {
                "rule": finding.rule,
                "path": finding.path,
                "scope": finding.scope,
                "message": finding.message,
                "fingerprint": fingerprint,
                "count": 1,
            }
    entries = sorted(grouped.values(),
                     key=lambda e: (e["path"], e["rule"], e["message"]))
    payload = {"schema": BASELINE_SCHEMA, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return sum(entry["count"] for entry in entries)
