"""Whole-program project model: symbols + a conservative call graph.

One build pass over every :class:`~repro.analysis.astutil.ParsedFile`
produces the interprocedural substrate the dataflow rule families
(``taint``, ``purity``, ``excflow``) walk and that ``repro lint
graph`` exports as ``repro.lintgraph/v1``:

* a **symbol table** — every module, class (with declared-attribute
  types where inferable) and function/method, keyed by fully-qualified
  dotted id (``repro.core.cache.ByteCache.insert_packet``);
* a **call graph** — direct calls through the per-file import alias
  maps (including relative imports), ``self.method()`` resolution
  through declared base classes, method resolution on attributes and
  locals whose class is inferable from an annotation or a constructor
  call, and constructor calls landing on ``__init__``.  Calls on
  duck-typed receivers stay *opaque* (recorded with a ``None`` callee)
  — the analysis is deliberately conservative rather than complete;
* per-function **effect records** — module-global mutations, direct
  raises, and ``try`` blocks with the exceptions they catch — the raw
  material for the purity and exception-flow families.

The model is built exactly once per lint run and handed to every rule
alongside the parsed files, the same sharing discipline as the
one-parse-per-file rule for ASTs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .astutil import ParsedFile, enclosing_scopes, walk_functions
from .config import LintConfig

#: Pseudo-function qualname for statements at module scope.
MODULE_SCOPE = "<module>"

#: Method names that mutate their receiver in place (container stores).
MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "update", "extend", "insert",
    "setdefault", "pop", "popitem", "popleft", "clear", "remove",
    "discard", "sort", "reverse", "write", "writelines",
})


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    id: str                      # repro.core.cache.ByteCache.insert_packet
    module: str
    qualname: str                # ByteCache.insert_packet / outer.inner
    relpath: str
    line: int
    node: ast.AST                # FunctionDef | AsyncFunctionDef
    class_id: Optional[str]      # owning class id for methods
    params: List[str]            # positional-or-keyword names, in order
    is_nested: bool              # defined inside another function

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class, with whatever attribute types are inferable."""

    id: str
    module: str
    name: str
    relpath: str
    line: int
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)     # resolved class ids
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn id
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> class id


@dataclass
class CallSite:
    """One call expression, resolved as far as the model can see.

    ``callee`` is a project function id when resolution succeeded,
    else ``None``; ``external`` carries the dotted name of a call that
    resolved outside the project (``json.dump``) — both ``None`` means
    a duck-typed receiver the model treats as opaque.
    """

    caller: str                  # function id, or module id + ".<module>"
    callee: Optional[str]
    external: Optional[str]
    relpath: str
    line: int
    node: ast.Call


@dataclass
class GlobalMutation:
    """A write to module-global state inside a function."""

    function: str                # function id
    name: str                    # the module-level name mutated
    relpath: str
    line: int
    detail: str                  # e.g. "CACHE[key] = ..." / "global hits += 1"


@dataclass
class TryRecord:
    """One ``try`` statement and what its handlers catch."""

    function: str
    node: ast.Try
    relpath: str
    line: int


class ProjectModel:
    """Symbols + call graph for the whole linted tree, built once."""

    def __init__(self, files: List[ParsedFile], config: LintConfig) -> None:
        self.config = config
        self.files = files
        self.modules: Dict[str, ParsedFile] = {
            parsed.module: parsed for parsed in files
            if parsed.module is not None}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.calls: Dict[str, List[CallSite]] = {}
        self.callers: Dict[str, Set[str]] = {}
        self.mutations: Dict[str, List[GlobalMutation]] = {}
        self.tries: Dict[str, List[TryRecord]] = {}
        #: module -> names assigned at module scope (mutation targets).
        self.module_globals: Dict[str, Set[str]] = {}
        #: module -> bound name -> dotted target (imports, incl. relative).
        self._aliases: Dict[str, Dict[str, str]] = {}
        self._scopes: Dict[str, Dict[int, str]] = {}
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        known = set(self.modules)
        for parsed in self.files:
            if parsed.module is None:
                continue
            self._aliases[parsed.module] = _build_aliases(parsed, known)
            self._collect_symbols(parsed)
        for parsed in self.files:
            if parsed.module is None:
                continue
            self._resolve_class_details(parsed)
        for parsed in self.files:
            if parsed.module is None:
                continue
            self._collect_effects(parsed)

    def _collect_symbols(self, parsed: ParsedFile) -> None:
        module = parsed.module
        assert module is not None
        self.module_globals[module] = _module_level_names(parsed.tree)
        for qualname, node in walk_functions(parsed.tree):
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            parts = qualname.split(".")
            fn_id = f"{module}.{qualname}"
            parent = ".".join(parts[:-1])
            # walk_functions yields parents before children, so a
            # parent already present in the table means a nested def.
            is_nested = bool(parent) and f"{module}.{parent}" in self.functions
            self.functions[fn_id] = FunctionInfo(
                id=fn_id, module=module, qualname=qualname,
                relpath=parsed.relpath, line=node.lineno, node=node,
                class_id=None,
                params=[arg.arg for arg in node.args.args],
                is_nested=is_nested)
        for cls_qualname, cls_node in _walk_classes(parsed.tree):
            cls_id = f"{module}.{cls_qualname}"
            info = ClassInfo(
                id=cls_id, module=module, name=cls_qualname,
                relpath=parsed.relpath, line=cls_node.lineno, node=cls_node)
            self.classes[cls_id] = info
        # Second pass: attach methods and fix class ids on FunctionInfo.
        for fn_id, fn in list(self.functions.items()):
            if fn.module != module:
                continue
            parts = fn.qualname.split(".")
            if len(parts) > 1:
                owner = f"{module}." + ".".join(parts[:-1])
                if owner in self.classes:
                    fn.class_id = owner
                    self.classes[owner].methods[parts[-1]] = fn_id

    def _resolve_class_details(self, parsed: ParsedFile) -> None:
        module = parsed.module
        assert module is not None
        for cls in self.classes.values():
            if cls.module != module:
                continue
            for base in cls.node.bases:
                base_id = self._resolve_type(module, base)
                if base_id is not None and base_id in self.classes:
                    cls.bases.append(base_id)
            self._infer_attr_types(module, cls)

    def _infer_attr_types(self, module: str, cls: ClassInfo) -> None:
        # Class-level annotations: ``cache: ByteCache``.
        for statement in cls.node.body:
            if isinstance(statement, ast.AnnAssign) and \
                    isinstance(statement.target, ast.Name):
                type_id = self._resolve_type(module, statement.annotation)
                if type_id is not None and type_id in self.classes:
                    cls.attr_types[statement.target.id] = type_id
        # ``self.x = ClassName(...)`` / ``self.x: T = ...`` in methods.
        for method_id in cls.methods.values():
            fn = self.functions[method_id]
            for node in ast.walk(fn.node):
                target: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, annotation, value = (node.target,
                                                 node.annotation, node.value)
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                type_id = None
                if annotation is not None:
                    type_id = self._resolve_type(module, annotation)
                if type_id is None and isinstance(value, ast.Call):
                    type_id = self._resolve_type(module, value.func)
                if type_id is not None and type_id in self.classes:
                    cls.attr_types.setdefault(target.attr, type_id)

    def _collect_effects(self, parsed: ParsedFile) -> None:
        module = parsed.module
        assert module is not None
        globals_here = self.module_globals[module]
        # Module-level statements run under a pseudo-function scope so
        # import-time calls still appear in the graph.
        module_fn = f"{module}.{MODULE_SCOPE}"
        for owner_id, body, fn in self._scopes_of(parsed, module_fn):
            local_types = self.local_types(module, fn)
            declared_globals = _declared_globals(fn.node) if fn else set()
            locals_bound = scope_locals(fn.node) if fn else set()
            sites = self.calls.setdefault(owner_id, [])
            for node in _walk_scope(body):
                if isinstance(node, ast.Call):
                    callee, external = self.resolve_call_in(
                        module, fn, local_types, node.func)
                    site = CallSite(
                        caller=owner_id, callee=callee, external=external,
                        relpath=parsed.relpath, line=node.lineno, node=node)
                    sites.append(site)
                    if callee is not None:
                        self.callers.setdefault(callee, set()).add(owner_id)
                if fn is not None:
                    self._record_mutation(
                        owner_id, parsed, node, globals_here,
                        declared_globals, locals_bound)
                if isinstance(node, ast.Try):
                    self.tries.setdefault(owner_id, []).append(TryRecord(
                        function=owner_id, node=node,
                        relpath=parsed.relpath, line=node.lineno))

    def _scopes_of(self, parsed: ParsedFile, module_fn: str
                   ) -> Iterator[Tuple[str, List[ast.stmt],
                                       Optional[FunctionInfo]]]:
        module = parsed.module
        assert module is not None
        module_body = [statement for statement in parsed.tree.body]
        yield module_fn, module_body, None
        for fn in self.functions.values():
            if fn.module != module:
                continue
            assert isinstance(fn.node, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))
            yield fn.id, fn.node.body, fn

    def _record_mutation(self, owner_id: str, parsed: ParsedFile,
                         node: ast.AST, globals_here: Set[str],
                         declared_globals: Set[str],
                         locals_bound: Set[str]) -> None:
        def is_global(name: str) -> bool:
            if name in declared_globals:
                return True
            return name in globals_here and name not in locals_bound

        mutation: Optional[GlobalMutation] = None
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                # ``global X; X = ...`` rebinding
                if isinstance(target, ast.Name) and \
                        target.id in declared_globals:
                    mutation = GlobalMutation(
                        function=owner_id, name=target.id,
                        relpath=parsed.relpath, line=node.lineno,
                        detail=f"rebinds module global {target.id!r}")
                # ``CACHE[key] = ...`` / ``CACHE.field = ...``
                base = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if isinstance(base, ast.Name) and \
                        isinstance(target, (ast.Subscript, ast.Attribute)) \
                        and is_global(base.id):
                    mutation = GlobalMutation(
                        function=owner_id, name=base.id,
                        relpath=parsed.relpath, line=node.lineno,
                        detail=f"stores into module global {base.id!r}")
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in MUTATING_METHODS and \
                isinstance(node.func.value, ast.Name) and \
                is_global(node.func.value.id):
            mutation = GlobalMutation(
                function=owner_id, name=node.func.value.id,
                relpath=parsed.relpath, line=node.lineno,
                detail=f"calls .{node.func.attr}() on module global "
                       f"{node.func.value.id!r}")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if isinstance(base, ast.Name) and is_global(base.id) and \
                        not isinstance(target, ast.Name):
                    mutation = GlobalMutation(
                        function=owner_id, name=base.id,
                        relpath=parsed.relpath, line=node.lineno,
                        detail=f"deletes from module global {base.id!r}")
        if mutation is not None:
            self.mutations.setdefault(owner_id, []).append(mutation)

    # -- resolution --------------------------------------------------------

    def local_types(self, module: str, fn: Optional[FunctionInfo]
                    ) -> Dict[str, str]:
        """Local name -> class/dotted type inferred from this scope.

        Recognises annotated parameters (``def f(cache: ByteCache)``),
        plain constructor assignments (``pool = ProcessPoolExecutor()``)
        and ``with Ctor(...) as name:`` bindings.  External types keep
        their dotted names so rules can match on them too.
        """
        types: Dict[str, str] = {}
        if fn is None:
            return types
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for arg in list(fn.node.args.args) + list(fn.node.args.kwonlyargs):
            if arg.annotation is not None:
                type_id = self._resolve_type(module, arg.annotation,
                                             allow_external=True)
                if type_id is not None:
                    types[arg.arg] = type_id
        for node in _walk_scope(fn.node.body):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    isinstance(node.value, ast.Call):
                type_id = self._resolve_type(module, node.value.func,
                                             allow_external=True)
                if type_id is not None:
                    types[node.targets[0].id] = type_id
            elif isinstance(node, ast.With):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call) and \
                            isinstance(item.optional_vars, ast.Name):
                        type_id = self._resolve_type(
                            module, item.context_expr.func,
                            allow_external=True)
                        if type_id is not None:
                            types[item.optional_vars.id] = type_id
        return types

    def _resolve_type(self, module: str, node: ast.AST,
                      allow_external: bool = False) -> Optional[str]:
        """Resolve an annotation or constructor callee to a class id."""
        # Unwrap Optional[T] / "T" minimally.
        if isinstance(node, ast.Subscript):
            head = self.resolve_dotted(module, node.value)
            if head is not None and head.rsplit(".", 1)[-1] in (
                    "Optional", "Final", "ClassVar", "Annotated"):
                inner = node.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                return self._resolve_type(module, inner, allow_external)
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            candidate = f"{module}.{node.value}"
            return candidate if candidate in self.classes else None
        dotted = self.resolve_dotted(module, node)
        if dotted is None:
            return None
        if dotted in self.classes:
            return dotted
        if allow_external and dotted not in self.functions:
            return dotted
        return None

    def resolve_dotted(self, module: str, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted id via aliases.

        Local (same-module) classes and functions resolve to their
        project ids; imported names resolve through the module's alias
        map (relative imports included); everything else is ``None``.
        """
        parts: List[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        parts.reverse()
        head = cursor.id
        aliases = self._aliases.get(module, {})
        if head in aliases:
            return ".".join([aliases[head]] + parts)
        local = f"{module}.{head}"
        if local in self.classes or local in self.functions:
            return ".".join([local] + parts) if parts else local
        if not parts:
            return None
        return None

    def resolve_call_in(self, module: str, fn: Optional[FunctionInfo],
                        local_types: Dict[str, str], func: ast.AST
                        ) -> Tuple[Optional[str], Optional[str]]:
        """Resolve one call target -> (project fn id, external dotted).

        Exactly one of the two is non-None on success; both are None
        for opaque (duck-typed) targets.
        """
        # self.method() / self.attr.method()
        if isinstance(func, ast.Attribute):
            chain: List[str] = []
            cursor: ast.AST = func
            while isinstance(cursor, ast.Attribute):
                chain.append(cursor.attr)
                cursor = cursor.value
            chain.reverse()
            if isinstance(cursor, ast.Name):
                head = cursor.id
                if head == "self" and fn is not None and \
                        fn.class_id is not None:
                    resolved = self._resolve_self_chain(fn.class_id, chain)
                    if resolved is not None:
                        return resolved, None
                elif head in local_types and len(chain) == 1:
                    method = self.lookup_method(local_types[head], chain[0])
                    if method is not None:
                        return method, None
                    if local_types[head] not in self.classes:
                        # External receiver type: dotted external target.
                        return None, f"{local_types[head]}.{chain[0]}"
        dotted = self.resolve_dotted(module, func)
        if dotted is None:
            # Fall back to the per-file import maps for plain external
            # dotted calls (``np.random.rand`` -> ``numpy.random.rand``).
            parsed = self.modules.get(module)
            if parsed is not None:
                external = parsed.resolve_call(func)
                if external is not None and \
                        not external.startswith(self.config.package + "."):
                    return None, external
            if isinstance(func, ast.Name):
                return None, func.id  # builtins: id, print, open, ...
            return None, None
        if dotted in self.functions:
            return dotted, None
        if dotted in self.classes:
            init = self.lookup_method(dotted, "__init__")
            return (init, None) if init is not None else (None, dotted)
        # repro-internal but unresolved (re-exports) or external dotted.
        return None, dotted

    def _resolve_self_chain(self, class_id: str,
                            chain: List[str]) -> Optional[str]:
        if len(chain) == 1:
            return self.lookup_method(class_id, chain[0])
        if len(chain) == 2:
            attr_type = self._attr_type(class_id, chain[0])
            if attr_type is not None:
                return self.lookup_method(attr_type, chain[1])
        return None

    def _attr_type(self, class_id: str, attr: str) -> Optional[str]:
        for candidate in self._mro(class_id):
            cls = self.classes.get(candidate)
            if cls is not None and attr in cls.attr_types:
                return cls.attr_types[attr]
        return None

    def lookup_method(self, class_id: str, method: str) -> Optional[str]:
        """Resolve ``method`` through the class and its declared bases."""
        for candidate in self._mro(class_id):
            cls = self.classes.get(candidate)
            if cls is not None and method in cls.methods:
                return cls.methods[method]
        return None

    def _mro(self, class_id: str) -> Iterator[str]:
        seen: Set[str] = set()
        stack = [class_id]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            yield current
            cls = self.classes.get(current)
            if cls is not None:
                stack.extend(cls.bases)

    # -- shared per-file caches -------------------------------------------

    def scopes(self, parsed: ParsedFile) -> Dict[int, str]:
        """Memoized ``enclosing_scopes`` for one file (shared by rules)."""
        cached = self._scopes.get(parsed.relpath)
        if cached is None:
            cached = enclosing_scopes(parsed.tree)
            self._scopes[parsed.relpath] = cached
        return cached

    def aliases_of(self, module: str) -> Dict[str, str]:
        return self._aliases.get(module, {})

    # -- graph walks -------------------------------------------------------

    def reachable_from(self, entry: str, max_depth: int = 64
                       ) -> Dict[str, Tuple[Optional[str], Optional[CallSite]]]:
        """BFS over project call edges from ``entry``.

        Returns ``{fn_id: (parent fn_id, call site in parent)}`` for
        every reached function (entry maps to ``(None, None)``), so
        callers can reconstruct the hop chain to any reached node.
        """
        parents: Dict[str, Tuple[Optional[str], Optional[CallSite]]] = {
            entry: (None, None)}
        frontier = [entry]
        depth = 0
        while frontier and depth < max_depth:
            next_frontier: List[str] = []
            for fn_id in frontier:
                for site in self.calls.get(fn_id, []):
                    if site.callee is None or site.callee in parents:
                        continue
                    parents[site.callee] = (fn_id, site)
                    next_frontier.append(site.callee)
            frontier = next_frontier
            depth += 1
        return parents

    def chain_to(self, parents: Dict[str, Tuple[Optional[str],
                                                Optional[CallSite]]],
                 target: str) -> List[CallSite]:
        """Call-site hop chain from the BFS entry down to ``target``."""
        chain: List[CallSite] = []
        cursor: Optional[str] = target
        while cursor is not None:
            parent, site = parents[cursor]
            if site is not None:
                chain.append(site)
            cursor = parent
        chain.reverse()
        return chain


# -- module-scope helpers --------------------------------------------------


def _build_aliases(parsed: ParsedFile, known: Set[str]) -> Dict[str, str]:
    """Bound name -> dotted target, with relative imports resolved."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(parsed.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    aliases[alias.name.split(".")[0]] = \
                        alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = parsed._resolve_from_base(node)
            if base is None:
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                target = f"{base}.{alias.name}" if base else alias.name
                aliases[bound] = target
    return aliases


def _walk_classes(tree: ast.Module) -> Iterator[Tuple[str, ast.ClassDef]]:
    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str,
                                                            ast.ClassDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from visit(child, f"{qualname}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from visit(child, f"{prefix}{child.name}.")

    yield from visit(tree, "")


def _walk_scope(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested def/class scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue  # nested scope: yielded as a statement, not entered
        for child in ast.iter_child_nodes(node):
            stack.append(child)


def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for statement in tree.body:
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = list(statement.targets)
        elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        names.add(element.id)
    return names


def _declared_globals(node: ast.AST) -> Set[str]:
    declared: Set[str] = set()
    for child in _walk_scope(getattr(node, "body", [])):
        if isinstance(child, ast.Global):
            declared.update(child.names)
    return declared


def scope_locals(node: ast.AST) -> Set[str]:
    """Names assigned in this scope (shadowing any module global)."""
    bound: Set[str] = set()
    declared = _declared_globals(node)
    for child in _walk_scope(getattr(node, "body", [])):
        if isinstance(child, ast.Assign):
            for target in child.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(child, (ast.AnnAssign, ast.AugAssign)) and \
                isinstance(child.target, ast.Name):
            bound.add(child.target.id)
        elif isinstance(child, ast.For) and \
                isinstance(child.target, ast.Name):
            bound.add(child.target.id)
        elif isinstance(child, ast.With):
            for item in child.items:
                if isinstance(item.optional_vars, ast.Name):
                    bound.add(item.optional_vars.id)
    return bound - declared
