"""Declarative lint configuration (``[tool.repro-lint]`` in pyproject).

Everything the rules enforce — the layer order, the determinism
escape hatches, the registered hot functions — is data, not code, so
architecture changes are one-line config edits reviewed alongside the
code that makes them.

``tomllib`` ships only with Python >= 3.11; on 3.10 a minimal fallback
parser reads just the ``[tool.repro-lint*]`` tables (whose syntax this
repo controls: strings, booleans, and string arrays).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on 3.10
    _toml = None


#: Layer ranks, bottom to top.  A module may import repro modules whose
#: layer rank is <= its own.  ``oracles`` is the dependency-free slice
#: of the verify package that the experiment runner arms online.
DEFAULT_LAYER_ORDER = [
    "core", "sim", "net", "gateway", "app", "workload",
    "metrics", "analysis", "oracles", "experiments", "verify", "cli",
]

#: Dotted-module overrides of the second-path-segment layer default
#: (longest prefix wins).
DEFAULT_LAYER_ASSIGN = {
    "repro": "cli",                      # the root package re-exports
    "repro.__main__": "cli",
    "repro.cli": "cli",
    "repro.verify.oracles": "oracles",
}

#: Modules allowed to touch process-global randomness / wall clocks:
#: the named-stream registry itself, and the CLI's user-facing edges.
DEFAULT_DETERMINISM_ALLOW = ["repro.sim.rng", "repro.cli"]

#: Wall-clock calls that silently break replay (``perf_counter`` is
#: deliberately absent: it feeds profiling output, never results).
DEFAULT_WALLCLOCK = [
    "time.time", "time.time_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.date.today", "os.urandom",
]

#: Functions on the per-packet/per-byte path, held to the strict
#: telemetry-None-check and no-allocation discipline the 1.5x
#: bench_hotpath gate depends on.
DEFAULT_HOT_FUNCTIONS = [
    "repro.core.encoder.ByteCachingEncoder.encode",
    "repro.core.encoder.ByteCachingEncoder._find_regions",
    "repro.core.decoder.ByteCachingDecoder.decode",
    "repro.core.decoder.ByteCachingDecoder._accept",
    "repro.core.cache.ByteCache.insert_packet",
    "repro.core.cache.ByteCache.lookup",
    "repro.core.region.expand_match",
    "repro.core.region.common_prefix_length",
    "repro.core.region.common_suffix_length",
    "repro.sim.engine.Simulator.run",
]

#: Attribute names holding optional observer hooks (telemetry,
#: profilers, verifiers, span recorders).  On the hot path these must
#: be hoisted into a local and guarded by a single ``is not None``
#: check.
DEFAULT_TELEMETRY_ATTRS = ["profiler", "verifier", "telemetry", "recorder",
                           "spans"]

#: Determinism-taint sources: calls whose return value must never flow
#: into a serialized report, cache key, bench JSON or telemetry
#: export.  Global-state RNG draws and ``id()``-as-value are seeded by
#: the rule itself on top of this list.
DEFAULT_TAINT_SOURCES = DEFAULT_WALLCLOCK + [
    "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes", "secrets.token_hex",
]

#: Determinism-taint sinks: serialization edges.  An argument reaching
#: one of these (directly or through any bounded call chain) must be
#: deterministic, or runs stop being bit-identical across replays.
DEFAULT_TAINT_SINKS = ["json.dump", "json.dumps", "pickle.dump",
                       "pickle.dumps"]

#: Maximum hops a taint trace may take source -> sink; flows deeper
#: than this are out of the analysis' scope (soundness bound).
DEFAULT_TAINT_MAX_HOPS = 24

#: Process-boundary submission functions: their first argument is a
#: callable shipped to a worker process and must pickle.  ``.submit``/
#: ``.map`` on a ``concurrent.futures`` executor are detected
#: structurally on top of this list.
DEFAULT_PURITY_SUBMIT = ["repro.experiments.sweep.parallel_map"]

#: Modules allowed to catch-and-handle ``InvariantViolation`` without
#: re-raising: the verification harness itself (differential runner,
#: fuzzer) and the chaos scorecard runner record violations as data.
DEFAULT_EXCFLOW_ALLOW = ["repro.verify", "repro.chaos"]


@dataclass
class LintConfig:
    """Parsed ``[tool.repro-lint]`` settings."""

    root: Path = field(default_factory=Path.cwd)
    roots: List[str] = field(default_factory=lambda: ["src", "benchmarks"])
    package: str = "repro"
    baseline: str = "lint-baseline.json"
    layer_order: List[str] = field(
        default_factory=lambda: list(DEFAULT_LAYER_ORDER))
    layer_assign: Dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_LAYER_ASSIGN))
    determinism_allow: List[str] = field(
        default_factory=lambda: list(DEFAULT_DETERMINISM_ALLOW))
    wallclock: List[str] = field(
        default_factory=lambda: list(DEFAULT_WALLCLOCK))
    hot_functions: List[str] = field(
        default_factory=lambda: list(DEFAULT_HOT_FUNCTIONS))
    telemetry_attrs: List[str] = field(
        default_factory=lambda: list(DEFAULT_TELEMETRY_ATTRS))
    taint_sources: List[str] = field(
        default_factory=lambda: list(DEFAULT_TAINT_SOURCES))
    taint_sinks: List[str] = field(
        default_factory=lambda: list(DEFAULT_TAINT_SINKS))
    taint_max_hops: int = DEFAULT_TAINT_MAX_HOPS
    purity_submit: List[str] = field(
        default_factory=lambda: list(DEFAULT_PURITY_SUBMIT))
    excflow_allow: List[str] = field(
        default_factory=lambda: list(DEFAULT_EXCFLOW_ALLOW))

    def layer_rank(self, module: str) -> Optional[int]:
        """Rank of ``module`` in the layer order, or None if unknown."""
        layer = self.layer_of(module)
        if layer is None:
            return None
        try:
            return self.layer_order.index(layer)
        except ValueError:
            return None

    def layer_of(self, module: str) -> Optional[str]:
        """Layer name for a dotted module: most-specific rule wins.

        Candidate rules are the explicit ``layers.assign`` prefixes and
        the implicit second-path-segment default (which counts as a
        two-segment prefix, so the bare ``package = "cli"`` root entry
        covers only the package ``__init__`` itself, not the tree
        underneath it).  Explicit assignments win ties.
        """
        candidates: List[Tuple[int, int, str]] = []
        for prefix, layer in self.layer_assign.items():
            if module == prefix or module.startswith(prefix + "."):
                candidates.append((len(prefix.split(".")), 1, layer))
        parts = module.split(".")
        if len(parts) >= 2 and parts[0] == self.package:
            candidates.append((2, 0, parts[1]))
        if not candidates:
            return None
        return max(candidates, key=lambda c: (c[0], c[1]))[2]


def load_config(root: Path) -> LintConfig:
    """Read ``[tool.repro-lint]`` from ``root/pyproject.toml``.

    Missing file or missing table both yield the defaults, so the
    engine is usable on a bare tree.
    """
    config = LintConfig(root=root)
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return config
    text = pyproject.read_text(encoding="utf-8")
    if _toml is not None:
        data = _toml.loads(text)
    else:
        data = _parse_repro_lint_subset(text)
    table = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        return config

    def strings(value: Any) -> Optional[List[str]]:
        if isinstance(value, list) and all(isinstance(v, str) for v in value):
            return list(value)
        return None

    if strings(table.get("roots")) is not None:
        config.roots = strings(table["roots"])
    if isinstance(table.get("package"), str):
        config.package = table["package"]
    if isinstance(table.get("baseline"), str):
        config.baseline = table["baseline"]

    layers = table.get("layers", {})
    if isinstance(layers, dict):
        if strings(layers.get("order")) is not None:
            config.layer_order = strings(layers["order"])
        assign = layers.get("assign", {})
        if isinstance(assign, dict):
            merged = dict(DEFAULT_LAYER_ASSIGN)
            merged.update({k: v for k, v in assign.items()
                           if isinstance(k, str) and isinstance(v, str)})
            config.layer_assign = merged

    determinism = table.get("determinism", {})
    if isinstance(determinism, dict):
        if strings(determinism.get("allow-modules")) is not None:
            config.determinism_allow = strings(determinism["allow-modules"])
        if strings(determinism.get("wallclock")) is not None:
            config.wallclock = strings(determinism["wallclock"])

    hotpath = table.get("hotpath", {})
    if isinstance(hotpath, dict):
        if strings(hotpath.get("functions")) is not None:
            config.hot_functions = strings(hotpath["functions"])
        if strings(hotpath.get("telemetry-attrs")) is not None:
            config.telemetry_attrs = strings(hotpath["telemetry-attrs"])

    taint = table.get("taint", {})
    if isinstance(taint, dict):
        if strings(taint.get("sources")) is not None:
            config.taint_sources = strings(taint["sources"])
        if strings(taint.get("sinks")) is not None:
            config.taint_sinks = strings(taint["sinks"])
        if isinstance(taint.get("max-hops"), int):
            config.taint_max_hops = taint["max-hops"]

    purity = table.get("purity", {})
    if isinstance(purity, dict):
        if strings(purity.get("submit-functions")) is not None:
            config.purity_submit = strings(purity["submit-functions"])

    excflow = table.get("excflow", {})
    if isinstance(excflow, dict):
        if strings(excflow.get("allow-modules")) is not None:
            config.excflow_allow = strings(excflow["allow-modules"])

    return config


# -- minimal TOML subset (Python 3.10 fallback) ----------------------------

_TABLE_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")


def _parse_repro_lint_subset(text: str) -> Dict[str, Any]:
    """Parse only the ``[tool.repro-lint*]`` tables out of a TOML file.

    Handles the subset those tables use — string/boolean values and
    (possibly multi-line) arrays of strings — and ignores every other
    table entirely, so unrelated pyproject syntax cannot break it.
    """
    result: Dict[str, Any] = {}
    current: Optional[Dict[str, Any]] = None
    pending_key: Optional[str] = None
    pending_value = ""

    def commit(key: str, raw: str) -> None:
        if current is not None:
            current[key] = _parse_scalar_or_array(raw)

    for raw_line in text.splitlines():
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if pending_key is not None:
            pending_value += " " + line
            if _array_closed(pending_value):
                commit(pending_key, pending_value)
                pending_key, pending_value = None, ""
            continue
        match = _TABLE_RE.match(line)
        if match:
            name = match.group("name").strip().strip("\"'")
            if name == "tool.repro-lint" or name.startswith("tool.repro-lint."):
                current = result
                for part in _split_table_name(name):
                    current = current.setdefault(part, {})
            else:
                current = None
            continue
        if current is None or "=" not in line:
            continue
        key, _, value = line.partition("=")
        key = key.strip().strip("\"'")
        value = value.strip()
        if value.startswith("[") and not _array_closed(value):
            pending_key, pending_value = key, value
        else:
            commit(key, value)
    return result


def _split_table_name(name: str) -> List[str]:
    """Split ``tool.repro-lint.layers`` -> [tool, repro-lint, layers]."""
    return [part.strip().strip("\"'") for part in name.split(".")]


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment that sits outside any string literal."""
    quote: Optional[str] = None
    for index, char in enumerate(line):
        if quote is not None:
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
        elif char == "#":
            return line[:index]
    return line


def _array_closed(value: str) -> bool:
    """True once an array literal has its closing bracket (outside
    strings)."""
    depth = 0
    quote: Optional[str] = None
    for char in value:
        if quote is not None:
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
        elif char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
            if depth == 0:
                return True
    return False


def _parse_scalar_or_array(raw: str) -> Any:
    raw = raw.strip()
    if raw.startswith("["):
        return _parse_string_array(raw)
    return _parse_scalar(raw)


def _parse_scalar(raw: str) -> Any:
    raw = raw.strip()
    if raw in ("true", "false"):
        return raw == "true"
    if (raw.startswith('"') and raw.endswith('"')) or (
            raw.startswith("'") and raw.endswith("'")):
        return raw[1:-1]
    try:
        return int(raw)
    except ValueError:
        return raw


def _parse_string_array(raw: str) -> List[Any]:
    inner = raw.strip()
    if inner.startswith("["):
        inner = inner[1:]
    if inner.endswith("]"):
        inner = inner[:-1]
    items: List[Any] = []
    token = ""
    quote: Optional[str] = None
    for char in inner:
        if quote is not None:
            token += char
            if char == quote:
                quote = None
            continue
        if char in ("'", '"'):
            quote = char
            token += char
        elif char == ",":
            if token.strip():
                items.append(_parse_scalar(token.strip()))
            token = ""
        else:
            token += char
    if token.strip():
        items.append(_parse_scalar(token.strip()))
    return items
