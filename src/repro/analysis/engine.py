"""The lint engine: walk, parse once, run rules, ratchet, report.

Flow: collect ``*.py`` files under the configured roots -> parse each
exactly once into a :class:`~repro.analysis.astutil.ParsedFile` shared
by every rule -> run the selected rules -> apply inline pragmas and
the committed baseline -> emit a :class:`LintReport` (text or
``repro.lint/v1`` JSON).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional

from .astutil import ParsedFile
from .baseline import apply_baseline, load_baseline, write_baseline
from .config import LintConfig, load_config
from .findings import Finding, LintReport
from .pragmas import parse_pragmas
from .project import ProjectModel
from .registry import Rule, select_rules
from . import rules as _rules  # noqa: F401  (importing registers the rules)


def collect_files(config: LintConfig) -> List[Path]:
    """Every lintable source file under the configured roots."""
    found: List[Path] = []
    for root_name in config.roots:
        root = config.root / root_name
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            found.append(path)
    return found


def module_name_for(path: Path, config: LintConfig) -> Optional[str]:
    """Dotted module name for files under a package root, else None.

    ``src/repro/core/cache.py -> repro.core.cache``; a benchmark or
    script that is not importable as part of the package maps to None
    and is exempt from the layering DAG (the other rule families still
    apply).
    """
    for root_name in config.roots:
        root = config.root / root_name
        try:
            relative = path.relative_to(root)
        except ValueError:
            continue
        parts = list(relative.parts)
        if not parts or parts[0] != config.package:
            continue
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][:-3]
        return ".".join(parts)
    return None


def parse_file(path: Path, config: LintConfig) -> ParsedFile:
    text = path.read_text(encoding="utf-8")
    relpath = path.relative_to(config.root).as_posix()
    tree = ast.parse(text, filename=str(path))
    parsed = ParsedFile(
        path=str(path), relpath=relpath,
        module=module_name_for(path, config),
        is_package=path.name == "__init__.py",
        text=text, tree=tree)
    parsed.pragmas, parsed.pragma_findings = parse_pragmas(text, relpath)
    return parsed


def run_lint(root: Path,
             select: Optional[Iterable[str]] = None,
             baseline_path: Optional[Path] = None,
             use_baseline: bool = True,
             config: Optional[LintConfig] = None) -> LintReport:
    """Lint the tree at ``root`` and return the full report."""
    config = config if config is not None else load_config(root)
    rules = select_rules(select)
    report = LintReport(rules_run=[r.name for r in rules])

    parsed_files: List[ParsedFile] = []
    for path in collect_files(config):
        try:
            parsed = parse_file(path, config)
        except SyntaxError as error:
            report.findings.append(Finding(
                rule="hygiene-parse-error",
                path=path.relative_to(config.root).as_posix(),
                line=error.lineno or 1,
                message=f"file does not parse: {error.msg}"))
            continue
        parsed_files.append(parsed)
    report.files_checked = len(parsed_files)

    # One build pass produces the interprocedural substrate (symbols,
    # call graph, effect records) every rule shares.
    project = ProjectModel(parsed_files, config)

    findings: List[Finding] = list(report.findings)
    for parsed in parsed_files:
        findings.extend(parsed.pragma_findings)
    for rule_obj in rules:
        findings.extend(_run_rule(rule_obj, parsed_files, config, project))

    _apply_pragmas(findings, parsed_files)

    if use_baseline:
        path = baseline_path if baseline_path is not None \
            else config.root / config.baseline
        entries = load_baseline(path)
        findings, stale = apply_baseline(findings, entries)
        report.stale_baseline = stale
    report.findings = findings
    return report


def rewrite_baseline(root: Path, report: LintReport,
                     baseline_path: Optional[Path] = None) -> int:
    """Write the current findings as the new baseline; returns count."""
    config = load_config(root)
    path = baseline_path if baseline_path is not None \
        else config.root / config.baseline
    return write_baseline(path, report.findings)


def _run_rule(rule_obj: Rule, parsed_files: List[ParsedFile],
              config: LintConfig, project: ProjectModel) -> List[Finding]:
    if rule_obj.scope == "project":
        return list(rule_obj.fn(parsed_files, config, project))
    findings: List[Finding] = []
    for parsed in parsed_files:
        findings.extend(rule_obj.fn(parsed, config, project))
    return findings


def _apply_pragmas(findings: List[Finding],
                   parsed_files: List[ParsedFile]) -> None:
    pragmas_by_path = {parsed.relpath: parsed.pragmas
                       for parsed in parsed_files}
    for finding in findings:
        if finding.rule == "pragma-missing-reason":
            continue  # pragmas cannot suppress pragma misuse
        for pragma in pragmas_by_path.get(finding.path, {}).get(
                finding.line, []):
            if pragma.matches(finding.rule):
                finding.suppressed = True
                finding.suppress_reason = pragma.reason
                break


# -- rendering -------------------------------------------------------------


def format_text(report: LintReport, verbose_suppressed: bool = False) -> str:
    """Human-readable report (one line per finding, summary last)."""
    lines: List[str] = []
    ordered = sorted(report.findings,
                     key=lambda f: (f.path, f.line, f.col, f.rule))
    for finding in ordered:
        if finding.active:
            marker = ""
        elif finding.baselined:
            marker = " [baselined]"
        else:
            marker = f" [pragma: {finding.suppress_reason}]"
            if not verbose_suppressed:
                continue
        lines.append(f"{finding.path}:{finding.line}:{finding.col + 1}: "
                     f"{finding.rule} {finding.message}{marker}")
        if finding.active and finding.hops:
            for index, hop in enumerate(finding.hops):
                lines.append(f"    hop {index}: {hop.get('path')}:"
                             f"{hop.get('line')}  {hop.get('detail')}")
        if finding.active and finding.fix:
            lines.append(f"    fix: {finding.fix}")
    for entry in report.stale_baseline:
        lines.append(f"{entry.get('path')}: stale baseline entry for "
                     f"{entry.get('rule')} (finding fixed — prune with "
                     "--write-baseline)")
    active = report.active
    counts = (f"{report.files_checked} files, "
              f"{len(report.rules_run)} rules: "
              f"{len(active)} finding{'s' if len(active) != 1 else ''}")
    extras = []
    baselined = sum(1 for f in report.findings if f.baselined)
    suppressed = sum(1 for f in report.findings if f.suppressed)
    if baselined:
        extras.append(f"{baselined} baselined")
    if suppressed:
        extras.append(f"{suppressed} pragma-suppressed")
    if report.stale_baseline:
        extras.append(f"{len(report.stale_baseline)} stale baseline")
    if extras:
        counts += f" ({', '.join(extras)})"
    lines.append(counts)
    return "\n".join(lines)
