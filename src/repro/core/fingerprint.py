"""Fingerprint scheme: window size + anchor selection rule.

The paper's parameters (§III-B): window ``w = 16`` bytes, and a
fingerprint is *representative* (an anchor) when its last ``k = 4``
bits are zero, i.e. roughly one anchor per 16 byte positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Protocol, Sequence, Tuple, Union

import numpy as np

from .polyhash import AnchorSet, PolyFingerprinter
from .rabin import RabinFingerprinter

DEFAULT_WINDOW = 16
DEFAULT_ZERO_BITS = 4


class Fingerprinter(Protocol):
    """Anything that produces rolling window fingerprints."""

    window: int

    def anchors(self, data: bytes,
                mask: int) -> Union["AnchorSet",
                                    Iterable[Tuple[int, int]]]:
        """All ``(offset, fingerprint)`` selected by the mask rule.

        Either an :class:`~repro.core.polyhash.AnchorSet` (fast path)
        or a plain list of pairs (reference implementations).
        """
        ...

    def window_fingerprints(self, data: bytes) -> Iterable[Tuple[int, int]]:
        """All ``(offset, fingerprint)`` pairs."""
        ...


@dataclass
class FingerprintScheme:
    """A configured fingerprinter plus the anchor-selection rule.

    Encoder and decoder of a gateway pair must share an identical
    scheme; anchor positions are content-defined so both sides select
    the same anchors from the same payload bytes.

    ``selection`` chooses the sampling rule: ``"value"`` is the paper's
    last-k-bits-zero rule (§III-A); ``"winnowing"`` keeps each sliding
    window's minimum fingerprint (bounded anchor gaps — see
    :mod:`repro.core.winnowing`).  For winnowing the expected anchor
    density is matched to value sampling by using a selection window of
    ``2**zero_bits`` fingerprints.
    """

    window: int = DEFAULT_WINDOW
    zero_bits: int = DEFAULT_ZERO_BITS
    kind: str = "poly"
    selection: str = "value"
    _impl: Fingerprinter = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.zero_bits < 0 or self.zero_bits > 32:
            raise ValueError("zero_bits must be in [0, 32]")
        if self.selection not in ("value", "winnowing"):
            raise ValueError(f"unknown selection rule: {self.selection!r}")
        if self.kind == "poly":
            self._impl = PolyFingerprinter(self.window)
        elif self.kind == "rabin":
            self._impl = RabinFingerprinter(self.window)
        else:
            raise ValueError(f"unknown fingerprinter kind: {self.kind!r}")

    @property
    def mask(self) -> int:
        return (1 << self.zero_bits) - 1

    def anchors(self, data: bytes) -> AnchorSet:
        """Selected ``(offset, fingerprint)`` anchors of ``data``.

        Always an :class:`AnchorSet`, regardless of the underlying
        fingerprinter, so the encoder/decoder hot paths see one type.
        """
        if self.selection == "value":
            selected = self._impl.anchors(data, self.mask)
            if isinstance(selected, AnchorSet):
                return selected
            return AnchorSet.from_pairs(selected)
        from .winnowing import winnow_positions

        selection_window = max(2, 1 << self.zero_bits)
        if hasattr(self._impl, "hashes"):
            hashes = self._impl.hashes(data)  # type: ignore[attr-defined]
            positions = winnow_positions(hashes, selection_window)
            indices = np.asarray(positions, dtype=np.int64)
            return AnchorSet(indices, hashes[indices])
        from .winnowing import winnow_anchors

        return AnchorSet.from_pairs(
            winnow_anchors(list(self._impl.window_fingerprints(data)),
                           selection_window))

    def batch_anchors(self, payloads: Sequence[bytes]) -> List[AnchorSet]:
        """Anchor sets for a whole window of packets.

        The poly + value-sampling configuration (the fast path every
        experiment uses) fingerprints the concatenation of all payloads
        in a single numpy pass (see
        :meth:`~repro.core.polyhash.PolyFingerprinter.batch_anchors`);
        other fingerprinters and selection rules fall back to the
        per-packet code.  Both routes are byte-identical to calling
        :meth:`anchors` on each payload.
        """
        if self.selection == "value" and isinstance(self._impl,
                                                    PolyFingerprinter):
            return self._impl.batch_anchors(payloads, self.mask)
        return [self.anchors(payload) for payload in payloads]

    def expected_anchor_spacing(self) -> float:
        """Mean byte distance between anchors on random data."""
        return float(1 << self.zero_bits)
