"""Encoder/decoder byte caches.

Two cooperating structures, as in Spring & Wetherall:

* :class:`PacketStore` — the payload cache: recently seen packet
  payloads, evicted FIFO under a byte budget (and optionally a packet
  budget, which is how Table I's "window of k packets" is expressed).
* :class:`FingerprintTable` — fingerprint -> newest packet containing
  it.  §III-B: entries are *replaced* when a newer packet contains the
  same fingerprint, and the byte offset of the fingerprint inside the
  payload is stored alongside so match expansion starts instantly.

Entries whose packet has been evicted from the store are invalidated
lazily on lookup.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from .polyhash import AnchorSet
from .ringtable import RingEntry, RingFingerprintTable


class CacheEntry:
    """One fingerprint-table entry.

    One entry is created per anchor per cached packet — millions per
    sweep — so this is a hand-slotted class rather than a dataclass
    (``dataclass(slots=True)`` needs Python >= 3.10).
    """

    __slots__ = ("fingerprint", "store_id", "offset", "tcp_seq", "flow",
                 "packet_counter", "usable")

    def __init__(self, fingerprint: int, store_id: int, offset: int,
                 tcp_seq: Optional[int] = None,
                 flow: Optional[tuple] = None,
                 packet_counter: int = 0,
                 usable: bool = True) -> None:
        self.fingerprint = fingerprint
        self.store_id = store_id          # key into the PacketStore
        self.offset = offset              # fingerprint window offset in payload
        self.tcp_seq = tcp_seq            # §V-B: seq of the cached segment
        self.flow = flow                  # flow identity of the cached segment
        self.packet_counter = packet_counter  # §V-C: monotone packet index
        self.usable = usable              # informed marking can veto an entry

    def __repr__(self) -> str:
        return (f"CacheEntry(fingerprint={self.fingerprint}, "
                f"store_id={self.store_id}, offset={self.offset}, "
                f"tcp_seq={self.tcp_seq}, flow={self.flow}, "
                f"packet_counter={self.packet_counter}, usable={self.usable})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheEntry):
            return NotImplemented
        return (self.fingerprint == other.fingerprint
                and self.store_id == other.store_id
                and self.offset == other.offset
                and self.tcp_seq == other.tcp_seq
                and self.flow == other.flow
                and self.packet_counter == other.packet_counter
                and self.usable == other.usable)


class PacketStore:
    """Byte-budgeted store of packet payloads.

    Eviction is FIFO by default (Spring & Wetherall's choice — the
    cache is a sliding window over the stream).  ``eviction="lru"``
    keeps hot payloads alive instead; the difference is measured by
    ``benchmarks/bench_cache_policy.py``.
    """

    def __init__(self, byte_budget: int = 4 * 1024 * 1024,
                 max_packets: Optional[int] = None,
                 eviction: str = "fifo") -> None:
        if byte_budget <= 0:
            raise ValueError("byte_budget must be positive")
        if max_packets is not None and max_packets <= 0:
            raise ValueError("max_packets must be positive")
        if eviction not in ("fifo", "lru"):
            raise ValueError(f"unknown eviction policy: {eviction!r}")
        self.byte_budget = byte_budget
        self.max_packets = max_packets
        self.eviction = eviction
        self._lru = eviction == "lru"
        self._data: "OrderedDict[int, bytes]" = OrderedDict()
        self._bytes = 0
        self._ids = itertools.count(1)
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def add(self, payload: bytes) -> int:
        """Store a payload; returns its store id.  May evict old entries."""
        store_id = next(self._ids)
        self._data[store_id] = payload
        self._bytes += len(payload)
        self._evict()
        return store_id

    def get(self, store_id: int) -> Optional[bytes]:
        payload = self._data.get(store_id)
        if payload is not None and self._lru:
            self._data.move_to_end(store_id)
        return payload

    def view(self, store_id: int) -> Optional[memoryview]:
        """Zero-copy view of a stored payload.

        Region reads during decoding splice slices of stored payloads
        into the reconstruction buffer; serving them as memoryviews
        avoids one intermediate ``bytes`` copy per region.  (Views are
        *not* used for byte comparisons — ``memoryview.__eq__`` is
        slower than the C fast path of ``bytes.__eq__``; see DESIGN.md
        §13.)
        """
        payload = self._data.get(store_id)
        if payload is None:
            return None
        if self._lru:
            self._data.move_to_end(store_id)
        return memoryview(payload)

    def __contains__(self, store_id: int) -> bool:
        return store_id in self._data

    def clear(self) -> None:
        self._data.clear()
        self._bytes = 0

    def set_byte_budget(self, byte_budget: int) -> int:
        """Re-cap the store, evicting immediately down to the new budget.

        Returns how many payloads the re-cap evicted — the "eviction
        storm" a memory-pressure fault measures.  Raising the budget
        back later evicts nothing and brings nothing back.
        """
        if byte_budget <= 0:
            raise ValueError("byte_budget must be positive")
        before = self.evictions
        self.byte_budget = byte_budget
        self._evict()
        return self.evictions - before

    def evict_oldest(self, count: int) -> int:
        """Force out up to ``count`` oldest payloads; returns how many.

        Used by the asymmetric-eviction fault action: evicting from one
        gateway's store only reproduces a cache divergence no per-packet
        policy can repair (the resilience layer's watchdog can).
        """
        evicted = 0
        while self._data and evicted < count:
            _, payload = self._data.popitem(last=False)
            self._bytes -= len(payload)
            self.evictions += 1
            evicted += 1
        return evicted

    def ids(self) -> Iterator[int]:
        return iter(self._data.keys())

    def _evict(self) -> None:
        while self._bytes > self.byte_budget or (
                self.max_packets is not None and len(self._data) > self.max_packets):
            _, payload = self._data.popitem(last=False)
            self._bytes -= len(payload)
            self.evictions += 1


class FingerprintTable:
    """fingerprint -> :class:`CacheEntry`, newest-wins."""

    def __init__(self) -> None:
        self._table: Dict[int, CacheEntry] = {}
        self.inserts = 0
        self.replacements = 0

    def __len__(self) -> int:
        return len(self._table)

    def put(self, entry: CacheEntry) -> None:
        """Insert or replace the entry for ``entry.fingerprint``."""
        if entry.fingerprint in self._table:
            self.replacements += 1
        self.inserts += 1
        self._table[entry.fingerprint] = entry

    def get(self, fingerprint: int) -> Optional[CacheEntry]:
        return self._table.get(fingerprint)

    def remove(self, fingerprint: int) -> None:
        self._table.pop(fingerprint, None)

    def clear(self) -> None:
        self._table.clear()

    def entries(self) -> Iterator[CacheEntry]:
        return iter(self._table.values())


#: Either table's entry type; both expose the same attribute set.
TableEntry = Union[CacheEntry, RingEntry]


class ByteCache:
    """The combined cache used by an encoder or decoder gateway.

    ``table_kind`` selects the fingerprint-table implementation:
    ``"ring"`` (the default) is the batched numpy ring buffer of
    :mod:`repro.core.ringtable`; ``"dict"`` is the per-entry dict of
    :class:`FingerprintTable`, kept as the reference implementation
    (the property tests and the differential runner hold the two to
    byte-identical encoder output).
    """

    def __init__(self, byte_budget: int = 4 * 1024 * 1024,
                 max_packets: Optional[int] = None,
                 eviction: str = "fifo",
                 table_kind: str = "ring") -> None:
        if table_kind not in ("ring", "dict"):
            raise ValueError(f"unknown table_kind: {table_kind!r}")
        self.store = PacketStore(byte_budget, max_packets, eviction)
        self.table_kind = table_kind
        self._ring: Optional[RingFingerprintTable] = (
            RingFingerprintTable() if table_kind == "ring" else None)
        self.table: Union[RingFingerprintTable, FingerprintTable] = (
            self._ring if self._ring is not None else FingerprintTable())
        self.flushes = 0
        #: Cache generation, stamped onto encoded packets by gateways
        #: running the resilience layer (see repro.gateway.resilience).
        #: Bumped explicitly on resync — NOT by flush(), because the
        #: Cache Flush policy flushes on every retransmission without
        #: the caches diverging.
        self.epoch = 0
        self._external_ids: Dict[int, int] = {}
        self._unusable_store_ids: set = set()
        # One generation of history: when a fingerprint's entry is
        # replaced, the displaced entry is kept here.  Decoders use it
        # to resolve references made against a slightly older cache
        # state (the encoder's view can lag by up to one RTT).
        self._previous_entries: Dict[int, CacheEntry] = {}

    def insert_packet(self, payload: bytes,
                      anchors: list,
                      tcp_seq: Optional[int] = None,
                      flow: Optional[tuple] = None,
                      packet_counter: int = 0,
                      external_id: Optional[int] = None) -> int:
        """Cache ``payload`` and point all its anchors at it.

        This is the Cache Update Procedure of Fig. 2 / Fig. 7: each
        selected fingerprint's table entry is replaced to reference the
        new packet.
        """
        store_id = self.store.add(payload)
        if external_id is not None:
            self._external_ids[store_id] = external_id
            if len(self._external_ids) > 4 * len(self.store._data) + 64:
                self._prune_external_ids()
        ring = self._ring
        if ring is not None:
            # Batched path: anchors stay numpy end-to-end; one packet
            # record plus vectorised array fills, no per-anchor objects.
            # Displaced generations stay in the ring, so the history
            # fallback needs no per-insert tracking either.
            if type(anchors) is AnchorSet:
                ring.insert_batch(anchors.offsets, anchors.fingerprints,
                                  store_id, tcp_seq, flow, packet_counter,
                                  anchors.fps_list())
            else:
                pairs = anchors if hasattr(anchors, "__len__") else list(anchors)
                offsets = np.fromiter((pair[0] for pair in pairs),
                                      dtype=np.int64, count=len(pairs))
                fps = np.fromiter((pair[1] for pair in pairs),
                                  dtype=np.uint64, count=len(pairs))
                ring.insert_batch(offsets, fps, store_id, tcp_seq, flow,
                                  packet_counter)
            return store_id
        # Reference path: per-entry dict updates with explicit
        # displacement tracking (the pre-ring implementation).
        pairs = anchors.pairs() if hasattr(anchors, "pairs") else anchors
        if not hasattr(pairs, "__len__"):
            pairs = list(pairs)
        table = self.table
        assert isinstance(table, FingerprintTable)
        entries = table._table
        lookup = entries.get
        previous = self._previous_entries
        entry_cls = CacheEntry
        replaced = 0
        for offset, fingerprint in pairs:
            displaced = lookup(fingerprint)
            if displaced is not None:
                replaced += 1
                if displaced.store_id != store_id:
                    previous[fingerprint] = displaced
            entries[fingerprint] = entry_cls(fingerprint, store_id, offset,
                                             tcp_seq, flow, packet_counter)
        table.inserts += len(pairs)
        table.replacements += replaced
        return store_id

    def lookup(self, fingerprint: int) -> Optional[Tuple[TableEntry, bytes]]:
        """Return (entry, cached payload) or None.

        Entries pointing at evicted payloads are removed lazily.
        """
        ring = self._ring
        if ring is not None:
            # Ring fast path: same checks as below, but inlined against
            # the table arrays so the (common) miss and filtered cases
            # never materialise a RingEntry view.
            entry_id = ring._index.get(fingerprint)
            if entry_id is None:
                return None
            if entry_id in ring._unusable_ids:
                return None
            store_id = ring._rec_store[ring._pkt[entry_id & ring._mask]]
            if store_id in self._unusable_store_ids:
                return None
            payload = self.store.get(store_id)
            if payload is None:
                ring.remove(fingerprint)
                return None
            return RingEntry(ring, entry_id), payload
        entry = self.table.get(fingerprint)
        if entry is None or not entry.usable:
            return None
        store_id = entry.store_id
        if store_id in self._unusable_store_ids:
            return None
        payload = self.store.get(store_id)
        if payload is None:
            self.table.remove(fingerprint)
            return None
        return entry, payload

    def lookup_view(self, fingerprint: int) -> Optional[memoryview]:
        """Zero-copy variant of :meth:`lookup` for region reads.

        Decoders splicing matched regions into a reconstruction buffer
        need only the stored payload bytes, not the table entry;
        serving them as a :class:`memoryview` (see
        :meth:`PacketStore.view`) skips one intermediate copy per
        referenced region.
        """
        ring = self._ring
        if ring is not None:
            entry_id = ring._index.get(fingerprint)
            if entry_id is None or entry_id in ring._unusable_ids:
                return None
            store_id = ring._rec_store[ring._pkt[entry_id & ring._mask]]
            if store_id in self._unusable_store_ids:
                return None
            view = self.store.view(store_id)
            if view is None:
                ring.remove(fingerprint)
            return view
        hit = self.lookup(fingerprint)
        if hit is None:
            return None
        return memoryview(hit[1])

    def lookup_previous(self, fingerprint: int) -> Optional[Tuple[TableEntry, bytes]]:
        """The displaced (one-generation-older) entry for a fingerprint.

        Used by decoders to resolve references encoded against a cache
        state from just before the latest replacement.
        """
        ring = self._ring
        entry: Optional[TableEntry]
        if ring is not None:
            entry = ring.previous_entry(fingerprint)
            if entry is None or not entry.usable:
                return None
            if entry.store_id in self._unusable_store_ids:
                return None
            payload = self.store.get(entry.store_id)
            if payload is None:
                return None
            return entry, payload
        entry = self._previous_entries.get(fingerprint)
        if entry is None or not entry.usable:
            return None
        if entry.store_id in self._unusable_store_ids:
            return None
        payload = self.store.get(entry.store_id)
        if payload is None:
            self._previous_entries.pop(fingerprint, None)
            return None
        return entry, payload

    def external_id_for(self, store_id: int) -> Optional[int]:
        """Originating packet id of a stored payload (for dependency
        tracking in the metrics layer), if one was recorded."""
        return self._external_ids.get(store_id)

    def flush(self) -> None:
        """Drop everything (the Cache Flush policy's reset, §V-A)."""
        self.store.clear()
        self.table.clear()
        self._external_ids.clear()
        self._unusable_store_ids.clear()
        self._previous_entries.clear()
        self.flushes += 1

    def bump_epoch(self) -> int:
        """Advance the cache generation (resync protocol commit point)."""
        self.epoch += 1
        return self.epoch

    def set_byte_budget(self, byte_budget: int) -> int:
        """Re-cap the packet store's byte budget; returns evictions forced.

        The memory-pressure half of the chaos faults (and the first
        brick of serving many users from one box: per-tenant budgets
        squeezed at runtime).  Fingerprint-table entries left dangling
        by the storm are invalidated lazily on lookup, exactly as for
        ordinary budget-driven eviction.
        """
        return self.store.set_byte_budget(byte_budget)

    def evict_fraction(self, fraction: float) -> int:
        """Evict the oldest ``fraction`` of stored payloads; returns count.

        Dangling fingerprint-table entries are invalidated lazily on
        lookup, exactly as for budget-driven eviction.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        return self.store.evict_oldest(int(len(self.store) * fraction))

    def _prune_external_ids(self) -> None:
        live = set(self.store.ids())
        self._external_ids = {sid: ext for sid, ext in self._external_ids.items()
                              if sid in live}
        self._unusable_store_ids &= live
        self._previous_entries = {
            fp: entry for fp, entry in self._previous_entries.items()
            if entry.store_id in live}

    def mark_unusable(self, fingerprint: int) -> bool:
        """Informed marking: forbid encodings against the packet this
        fingerprint currently resolves to.

        The unit of marking is the *cached packet* (Lumezanu et al.
        mark lost packets), so every other fingerprint resolving to the
        same payload is disabled too — otherwise the encoder would just
        re-reference the lost packet through one of its other anchors.
        """
        entry = self.table.get(fingerprint)
        if entry is None:
            return False
        entry.usable = False
        self._unusable_store_ids.add(entry.store_id)
        return True
