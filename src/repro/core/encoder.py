"""The byte-caching encoder (Fig. 2 / Fig. 7 logic).

The encoder is policy-parameterised: the Redundancy Identification and
Elimination procedure and the Cache Update procedure are exactly Spring
& Wetherall's, with the paper's three loss-robust algorithms expressed
as small hooks (see :mod:`repro.core.policies.base`):

* *before_packet* — Cache Flush's retransmission-triggered flush;
* *may_encode*    — k-distance's unencoded reference packets;
* *entry_eligible* — TCP-seq's "only encode against a strictly earlier
  segment" rule and k-distance's reference-window rule;
* *should_cache_now* — the ACK-gated extension's deferred cache update.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from time import perf_counter
from typing import (TYPE_CHECKING, Any, Iterable, List, NamedTuple, Optional,
                    Sequence, Set, Tuple, Union)

from .cache import ByteCache
from .fingerprint import FingerprintScheme
from .polyhash import AnchorSet
from .region import Region, expand_bounds
from .wire import MIN_REGION_LENGTH, SHIM_SIZE, encode_payload, wrap_raw
from .policies.base import EncoderPolicy, PacketMeta

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class _SplitPairs(NamedTuple):
    """A packet's surviving candidate anchors as parallel int lists.

    Kept split (not zipped) so the region loop can ``bisect`` on the
    ascending offsets to skip every anchor an accepted region swallowed
    in one C call.
    """

    offsets: Sequence[int]
    fingerprints: Sequence[int]


_EMPTY_SPLIT = _SplitPairs((), ())

#: Consecutive all-survivor bitmap probes before the prefilter is
#: bypassed, and the length of each bypass window (packets).  Small
#: enough that a traffic shift re-enables the prefilter within a dozen
#: packets; large enough to amortise the probe in steady hit-dense
#: phases.
_PROBE_DENSE_STREAK = 4
_PROBE_SKIP_WINDOW = 28


@dataclass
class EncodeResult:
    """Outcome of encoding one packet payload."""

    data: bytes                  # shimmed bytes to put on the wire
    encoded: bool                # True if any region was eliminated
    bytes_in: int                # original payload size
    bytes_out: int               # shimmed wire payload size
    regions: List[Region] = field(default_factory=list)
    dependencies: Set[int] = field(default_factory=set)   # packet ids referenced
    cached: bool = True          # False when the cache update was deferred
    #: Wire-format overhead every packet pays regardless of encoding:
    #: the 2-byte shim, plus the 1-byte epoch stamp when the gateway
    #: runs the resilience layer (see repro.gateway.resilience).
    shim_overhead: int = SHIM_SIZE

    @property
    def bytes_saved(self) -> int:
        return self.bytes_in - (self.bytes_out - self.shim_overhead)


class EncodeResultPool:
    """Free-list of :class:`EncodeResult` shells.

    The gateway hot loop creates one result per packet and discards it
    within the same event; pooling the dataclass shells kills that
    allocation churn.  Ownership rule: a result obtained from a pool
    belongs to the caller until :meth:`release`; the ``regions`` list
    and ``dependencies`` set are *never* recycled (consumers may keep
    them — the middlebox logs ``dependencies``), only the shell is.
    """

    __slots__ = ("_free", "reused")

    def __init__(self) -> None:
        self._free: List[EncodeResult] = []
        self.reused = 0

    def acquire(self, data: bytes, encoded: bool, bytes_in: int,
                bytes_out: int, regions: List[Region],
                dependencies: Set[int], cached: bool,
                shim_overhead: int) -> EncodeResult:
        free = self._free
        if free:
            result = free.pop()
            self.reused += 1
            result.data = data
            result.encoded = encoded
            result.bytes_in = bytes_in
            result.bytes_out = bytes_out
            result.regions = regions
            result.dependencies = dependencies
            result.cached = cached
            result.shim_overhead = shim_overhead
            return result
        return EncodeResult(data=data, encoded=encoded, bytes_in=bytes_in,
                            bytes_out=bytes_out, regions=regions,
                            dependencies=dependencies, cached=cached,
                            shim_overhead=shim_overhead)

    def release(self, result: EncodeResult) -> None:
        """Return a shell to the pool (caller must drop its reference)."""
        if len(self._free) < 64:
            self._free.append(result)


@dataclass
class EncoderStats:
    """Counters accumulated by an encoder over a run."""

    packets: int = 0
    packets_encoded: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    regions: int = 0
    matched_bytes: int = 0
    collisions: int = 0          # fingerprint hits rejected by byte compare
    ineligible_hits: int = 0     # hits rejected by the policy

    @property
    def compression_ratio(self) -> float:
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_out / self.bytes_in


class ByteCachingEncoder:
    """Encodes packet payloads against a local byte cache."""

    def __init__(self, scheme: FingerprintScheme, cache: ByteCache,
                 policy: EncoderPolicy,
                 min_region_length: int = MIN_REGION_LENGTH,
                 shim_overhead: int = SHIM_SIZE) -> None:
        self.scheme = scheme
        self.cache = cache
        self.policy = policy
        self.min_region_length = min_region_length
        self.shim_overhead = shim_overhead
        self.stats = EncoderStats()
        #: Optional :class:`repro.metrics.profiling.StageProfiler`;
        #: when None (the default) the timing branches cost one
        #: attribute load and an identity check per packet.
        self.profiler = None
        #: Optional :class:`repro.verify.oracles.VerificationHarness`;
        #: same contract — None (the default) costs one attribute load
        #: and an ``is None`` check per packet / emitted region.
        self.verifier = None
        #: Optional :class:`EncodeResultPool`; when set, results are
        #: pooled shells the caller must release (see the pool's
        #: ownership rule).  None (the default) allocates per packet.
        self.result_pool: Optional[EncodeResultPool] = None
        #: Optional causal span recorder (duck-typed,
        #: :class:`repro.metrics.spans.SpanRecorder`).  When set, the
        #: per-packet pass emits table_probe / region_expand /
        #: wire_pack stage spans under the gateway's encode span; when
        #: None the cost is an ``is None`` check per stage boundary.
        self.spans: Optional[Any] = None
        # Adaptive candidate-probe bypass (see _candidate_pairs): in
        # hit-dense traffic every anchor survives the bitmap prefilter,
        # so the vectorised probe is pure overhead.  After
        # _PROBE_DENSE_STREAK consecutive all-survivor probes the
        # prefilter is skipped for _PROBE_SKIP_WINDOW packets, then
        # re-probed.  Deterministic — no clocks, no randomness.
        self._dense_streak = 0
        self._probe_skip = 0
        policy.attach_encoder(self)

    def encode(self, payload: bytes, meta: PacketMeta,
               force_raw: bool = False) -> EncodeResult:
        """Run the full encoder pass over one outgoing payload.

        With ``force_raw`` the elimination pass is skipped entirely (the
        payload ships shimmed-raw) but the Cache Update pass still runs
        — the resilience layer's post-resync grace window uses this to
        rebuild reference state without emitting regions.
        """
        profiler = self.profiler
        if profiler is not None:
            started = perf_counter()
            anchors = self.scheme.anchors(payload)
            profiler.add("fingerprint", perf_counter() - started)
        else:
            anchors = self.scheme.anchors(payload)
        return self._encode_with_anchors(payload, anchors, meta, force_raw)

    def encode_batch(self, payloads: Sequence[bytes],
                     metas: Sequence[PacketMeta],
                     force_raw: bool = False) -> List[EncodeResult]:
        """Encode a whole window of packets, fingerprinted in one pass.

        Anchor selection is content-defined and cache-independent, so
        all payloads are fingerprinted up front in a single vectorised
        sweep (:meth:`FingerprintScheme.batch_anchors`); the per-packet
        policy hooks, region search and cache updates then run in
        arrival order, making the output byte-identical to calling
        :meth:`encode` per packet.
        """
        profiler = self.profiler
        if profiler is not None:
            started = perf_counter()
            anchor_sets = self.scheme.batch_anchors(payloads)
            profiler.add("batch_fingerprint", perf_counter() - started)
        else:
            anchor_sets = self.scheme.batch_anchors(payloads)
        results: List[EncodeResult] = []
        append = results.append
        policy = self.policy
        policy_cls = type(policy)
        fused = (profiler is None and self.verifier is None
                 and self.spans is None
                 and not force_raw
                 and policy_cls.before_packet is EncoderPolicy.before_packet
                 and policy_cls.may_encode is EncoderPolicy.may_encode
                 and policy_cls.should_cache_now
                 is EncoderPolicy.should_cache_now)
        if not fused:
            encode_one = self._encode_with_anchors
            for payload, meta, anchors in zip(payloads, metas, anchor_sets):
                append(encode_one(payload, anchors, meta, force_raw))
            return results
        # Fused fast loop: the exact work of _encode_with_anchors under
        # the permissive base hooks, with the no-op policy calls,
        # profiler branches and per-packet stats attribute traffic
        # hoisted out of the loop (stats are flushed once at the end).
        candidate_pairs = self._candidate_pairs
        find_regions = self._find_regions
        insert = self.cache.insert_packet
        pool = self.result_pool
        shim_overhead = self.shim_overhead
        bytes_in = 0
        bytes_out = 0
        packets_encoded = 0
        total_regions = 0
        matched_bytes = 0
        for payload, meta, anchors in zip(payloads, metas, anchor_sets):
            payload_len = len(payload)
            bytes_in += payload_len
            regions, dependencies = find_regions(
                payload, candidate_pairs(anchors), meta)
            if regions:
                data = encode_payload(payload, regions)
                if len(data) >= payload_len + SHIM_SIZE:
                    # Net loss after headers; ship raw instead.
                    regions = []
                    dependencies = set()
                    data = wrap_raw(payload)
            else:
                data = wrap_raw(payload)
            insert(payload, anchors, meta.tcp_seq, meta.flow, meta.counter,
                   meta.packet_id)
            data_len = len(data)
            bytes_out += data_len
            if regions:
                packets_encoded += 1
                total_regions += len(regions)
                for region in regions:
                    matched_bytes += region.length
                encoded = True
            else:
                encoded = False
            if pool is not None:
                append(pool.acquire(data, encoded, payload_len, data_len,
                                    regions, dependencies, True,
                                    shim_overhead))
            else:
                append(EncodeResult(
                    data=data,
                    encoded=encoded,
                    bytes_in=payload_len,
                    bytes_out=data_len,
                    regions=regions,
                    dependencies=dependencies,
                    cached=True,
                    shim_overhead=shim_overhead,
                ))
        stats = self.stats
        stats.packets += len(results)
        stats.bytes_in += bytes_in
        stats.bytes_out += bytes_out
        stats.packets_encoded += packets_encoded
        stats.regions += total_regions
        stats.matched_bytes += matched_bytes
        return results

    def _encode_with_anchors(self, payload: bytes, anchors: "AnchorSet",
                             meta: PacketMeta,
                             force_raw: bool) -> EncodeResult:
        """Everything after anchor selection (shared by both paths)."""
        stats = self.stats
        stats.packets += 1
        stats.bytes_in += len(payload)
        profiler = self.profiler
        verifier = self.verifier
        if verifier is not None:
            verifier.on_packet(meta)

        self.policy.before_packet(meta, self.cache)

        spans = self.spans
        regions: List[Region] = []
        dependencies: Set[int] = set()
        if not force_raw and self.policy.may_encode(meta):
            probe_span = None
            if spans is not None:
                probe_span = spans.begin_stage("table_probe", "encoder-core")
            if profiler is not None:
                started = perf_counter()
                pairs = self._candidate_pairs(anchors)
                profiler.add("table_probe", perf_counter() - started)
            else:
                pairs = self._candidate_pairs(anchors)
            expand_span = None
            if spans is not None:
                spans.end_stage(probe_span)
                expand_span = spans.begin_stage("region_expand",
                                                "encoder-core")
            if profiler is not None:
                started = perf_counter()
                regions, dependencies = self._find_regions(payload, pairs,
                                                           meta)
                profiler.add("region_expand", perf_counter() - started)
            else:
                regions, dependencies = self._find_regions(payload, pairs,
                                                           meta)
            if spans is not None:
                spans.end_stage(expand_span, regions=len(regions),
                                dependencies=len(dependencies))

        pack_span = None
        if spans is not None:
            pack_span = spans.begin_stage("wire_pack", "encoder-core")
        if profiler is not None:
            started = perf_counter()
        if regions:
            data = encode_payload(payload, regions)
            if len(data) >= len(payload) + SHIM_SIZE:
                # Net loss after headers; ship raw instead.
                regions = []
                dependencies = set()
                data = wrap_raw(payload)
        else:
            data = wrap_raw(payload)
        if profiler is not None:
            profiler.add("wire_pack", perf_counter() - started)
        if spans is not None:
            spans.end_stage(pack_span, bytes_out=len(data))

        cached = False
        if profiler is not None:
            started = perf_counter()
        if self.policy.should_cache_now(meta):
            self.insert_into_cache(payload, anchors, meta)
            cached = True
        else:
            self.policy.defer_cache(payload, anchors, meta)
        if profiler is not None:
            profiler.add("cache_ops", perf_counter() - started)

        stats.bytes_out += len(data)
        if regions:
            stats.packets_encoded += 1
            stats.regions += len(regions)
            stats.matched_bytes += sum(r.length for r in regions)

        pool = self.result_pool
        if pool is not None:
            return pool.acquire(data, bool(regions), len(payload), len(data),
                                regions, dependencies, cached,
                                self.shim_overhead)
        return EncodeResult(
            data=data,
            encoded=bool(regions),
            bytes_in=len(payload),
            bytes_out=len(data),
            regions=regions,
            dependencies=dependencies,
            cached=cached,
            shim_overhead=self.shim_overhead,
        )

    def insert_into_cache(self, payload: bytes, anchors: "AnchorSet",
                          meta: PacketMeta) -> None:
        """Cache Update Procedure (Fig. 2 part C / Fig. 7 part C)."""
        self.cache.insert_packet(
            payload, anchors,
            tcp_seq=meta.tcp_seq,
            flow=meta.flow,
            packet_counter=meta.counter,
            external_id=meta.packet_id,
        )

    # -- internal ---------------------------------------------------------

    def _candidate_pairs(
        self, anchors: "Union[AnchorSet, Sequence[Tuple[int, int]]]",
    ) -> "Union[AnchorSet, _SplitPairs, Sequence[Tuple[int, int]]]":
        """Pre-filter a packet's anchors against the cache table.

        With the ring table, one vectorised probe of the candidate
        bitmap discards the anchors that cannot possibly be in the
        fingerprint index (no false negatives — see
        :meth:`repro.core.ringtable.RingFingerprintTable.candidates`),
        so the per-anchor Python loop in :meth:`_find_regions` only
        touches plausible hits.  Other table kinds pass through.
        """
        ring = self.cache._ring
        if ring is None or type(anchors) is not AnchorSet:
            return anchors
        fps = anchors.fingerprints
        n = len(fps)
        if n == 0:
            return _EMPTY_SPLIT
        if self._probe_skip > 0:
            # Hit-dense traffic: recent probes let everything through,
            # so skip the prefilter entirely for a window of packets —
            # the region loop's index lookups are the ground truth, the
            # bitmap is only ever an accelerator.
            self._probe_skip -= 1
            return _SplitPairs(anchors.offsets.tolist(), anchors.fps_list())
        idxs = ring.candidate_indices(fps)
        survivors = len(idxs)
        if survivors == n:
            self._dense_streak += 1
            if self._dense_streak >= _PROBE_DENSE_STREAK:
                self._dense_streak = 0
                self._probe_skip = _PROBE_SKIP_WINDOW
            return _SplitPairs(anchors.offsets.tolist(), anchors.fps_list())
        self._dense_streak = 0
        if survivors == 0:
            return _EMPTY_SPLIT
        return _SplitPairs(anchors.offsets[idxs].tolist(),
                           fps[idxs].tolist())

    def _find_regions(self, payload: bytes,
                      anchors: "Union[AnchorSet, _SplitPairs, Iterable[Tuple[int, int]]]",
                      meta: PacketMeta) -> Tuple[List[Region], Set[int]]:
        """Redundancy Identification and Elimination (Fig. 2 part B)."""
        regions: List[Region] = []
        dependencies: Set[int] = set()
        pos = 0  # first byte not yet covered by an accepted region
        if type(anchors) is _SplitPairs:
            offs_l, fps_l = anchors
        else:
            seq = anchors.pairs() if hasattr(anchors, "pairs") else list(anchors)  # type: ignore[union-attr]
            offs_l = [p[0] for p in seq]
            fps_l = [p[1] for p in seq]
        if not offs_l:
            # Nothing survived the candidate prefilter — skip the local
            # binding below (fresh traffic hits this for most packets).
            return regions, dependencies
        cache = self.cache
        lookup = cache.lookup
        external_id = cache._external_ids.get
        policy = self.policy
        entry_eligible = policy.entry_eligible
        stats = self.stats
        verifier = self.verifier
        window = self.scheme.window
        min_length = self.min_region_length
        payload_len = len(payload)
        ring = cache._ring
        use_ring = ring is not None
        if use_ring:
            assert ring is not None
            idx_get = ring._index.get
            unusable_ids = ring._unusable_ids
            pkt_arr = ring._pkt
            off_arr = ring._offsets
            rec_store = ring._rec_store
            slot_mask = ring._mask
            store_get = cache.store.get
            unusable_sids = cache._unusable_store_ids
        # A policy that keeps the base entry_eligible hook (always True)
        # and no verifier never looks at the entry view, so the ring
        # branch can skip materialising a RingEntry per hit entirely.
        lazy_entry = (verifier is None and
                      type(policy).entry_eligible is EncoderPolicy.entry_eligible)
        entry: "Optional[object]" = None
        n = len(offs_l)
        i = 0
        while i < n:
            offset = offs_l[i]
            if offset < pos:
                # Anchor offsets are ascending, so one bisect replaces
                # the linear scan over every anchor the last accepted
                # region swallowed.
                i = bisect_left(offs_l, pos, i + 1)
                continue
            fingerprint = fps_l[i]
            i += 1
            if use_ring:
                # Inlined ByteCache.lookup against the ring arrays (the
                # registered hot loop; see that method for the checks).
                eid = idx_get(fingerprint)
                if eid is None:
                    continue
                if eid in unusable_ids:
                    continue
                slot = eid & slot_mask
                sid = rec_store[pkt_arr[slot]]
                if sid in unusable_sids:
                    continue
                stored = store_get(sid)
                if stored is None:
                    ring.remove(fingerprint)
                    continue
                entry_offset = int(off_arr[slot])
                if not lazy_entry:
                    entry = ring.entry(eid)
                    if not entry_eligible(entry, meta):
                        stats.ineligible_hits += 1
                        continue
            else:
                hit = lookup(fingerprint)
                if hit is None:
                    continue
                table_entry, stored = hit
                if not entry_eligible(table_entry, meta):
                    stats.ineligible_hits += 1
                    continue
                entry_offset = table_entry.offset
                sid = table_entry.store_id
                entry = table_entry
            if (offset == entry_offset and payload_len == len(stored)
                    and payload == stored):
                # Identical payloads (the repeated-transfer case): the
                # match trivially spans everything past ``pos``, which
                # is exactly what expand_bounds returns for two equal
                # buffers with equal anchor offsets — skip its four
                # slice allocations and two compares.
                bounds = (pos, pos, payload_len - pos)
            else:
                bounds = expand_bounds(payload, offset, stored, entry_offset,
                                       window, pos)
                if bounds is None:
                    stats.collisions += 1
                    continue
            offset_new, offset_stored, length = bounds
            if length <= min_length:
                continue
            if not policy.region_acceptable(length, payload_len, meta):
                stats.ineligible_hits += 1
                continue
            region = Region(
                fingerprint=fingerprint,
                offset_new=offset_new,
                offset_stored=offset_stored,
                length=length,
            )
            if verifier is not None:
                # verifier set forces lazy_entry False, so every path
                # that reaches here has a live entry view.
                verifier.on_region(meta, entry, region)  # type: ignore[arg-type]
            regions.append(region)
            external = external_id(sid)
            if external is not None:
                dependencies.add(external)
            pos = offset_new + length
        return regions, dependencies
