"""The byte-caching encoder (Fig. 2 / Fig. 7 logic).

The encoder is policy-parameterised: the Redundancy Identification and
Elimination procedure and the Cache Update procedure are exactly Spring
& Wetherall's, with the paper's three loss-robust algorithms expressed
as small hooks (see :mod:`repro.core.policies.base`):

* *before_packet* — Cache Flush's retransmission-triggered flush;
* *may_encode*    — k-distance's unencoded reference packets;
* *entry_eligible* — TCP-seq's "only encode against a strictly earlier
  segment" rule and k-distance's reference-window rule;
* *should_cache_now* — the ACK-gated extension's deferred cache update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, List, Set, Tuple

from .cache import ByteCache
from .fingerprint import FingerprintScheme
from .region import Region, expand_match
from .wire import MIN_REGION_LENGTH, SHIM_SIZE, encode_payload, wrap_raw
from .policies.base import EncoderPolicy, PacketMeta

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .polyhash import AnchorSet


@dataclass
class EncodeResult:
    """Outcome of encoding one packet payload."""

    data: bytes                  # shimmed bytes to put on the wire
    encoded: bool                # True if any region was eliminated
    bytes_in: int                # original payload size
    bytes_out: int               # shimmed wire payload size
    regions: List[Region] = field(default_factory=list)
    dependencies: Set[int] = field(default_factory=set)   # packet ids referenced
    cached: bool = True          # False when the cache update was deferred
    #: Wire-format overhead every packet pays regardless of encoding:
    #: the 2-byte shim, plus the 1-byte epoch stamp when the gateway
    #: runs the resilience layer (see repro.gateway.resilience).
    shim_overhead: int = SHIM_SIZE

    @property
    def bytes_saved(self) -> int:
        return self.bytes_in - (self.bytes_out - self.shim_overhead)


@dataclass
class EncoderStats:
    """Counters accumulated by an encoder over a run."""

    packets: int = 0
    packets_encoded: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    regions: int = 0
    matched_bytes: int = 0
    collisions: int = 0          # fingerprint hits rejected by byte compare
    ineligible_hits: int = 0     # hits rejected by the policy

    @property
    def compression_ratio(self) -> float:
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_out / self.bytes_in


class ByteCachingEncoder:
    """Encodes packet payloads against a local byte cache."""

    def __init__(self, scheme: FingerprintScheme, cache: ByteCache,
                 policy: EncoderPolicy,
                 min_region_length: int = MIN_REGION_LENGTH,
                 shim_overhead: int = SHIM_SIZE) -> None:
        self.scheme = scheme
        self.cache = cache
        self.policy = policy
        self.min_region_length = min_region_length
        self.shim_overhead = shim_overhead
        self.stats = EncoderStats()
        #: Optional :class:`repro.metrics.profiling.StageProfiler`;
        #: when None (the default) the timing branches cost one
        #: attribute load and an identity check per packet.
        self.profiler = None
        #: Optional :class:`repro.verify.oracles.VerificationHarness`;
        #: same contract — None (the default) costs one attribute load
        #: and an ``is None`` check per packet / emitted region.
        self.verifier = None
        policy.attach_encoder(self)

    def encode(self, payload: bytes, meta: PacketMeta,
               force_raw: bool = False) -> EncodeResult:
        """Run the full encoder pass over one outgoing payload.

        With ``force_raw`` the elimination pass is skipped entirely (the
        payload ships shimmed-raw) but the Cache Update pass still runs
        — the resilience layer's post-resync grace window uses this to
        rebuild reference state without emitting regions.
        """
        self.stats.packets += 1
        self.stats.bytes_in += len(payload)
        profiler = self.profiler
        verifier = self.verifier
        if verifier is not None:
            verifier.on_packet(meta)

        self.policy.before_packet(meta, self.cache)
        if profiler is not None:
            started = perf_counter()
            anchors = self.scheme.anchors(payload)
            profiler.add("fingerprint", perf_counter() - started)
        else:
            anchors = self.scheme.anchors(payload)

        regions: List[Region] = []
        dependencies: Set[int] = set()
        if not force_raw and self.policy.may_encode(meta):
            if profiler is not None:
                started = perf_counter()
                regions, dependencies = self._find_regions(payload, anchors,
                                                           meta)
                profiler.add("region_expand", perf_counter() - started)
            else:
                regions, dependencies = self._find_regions(payload, anchors,
                                                           meta)

        if regions:
            data = encode_payload(payload, regions)
            if len(data) >= len(payload) + SHIM_SIZE:
                # Net loss after headers; ship raw instead.
                regions = []
                dependencies = set()
                data = wrap_raw(payload)
        else:
            data = wrap_raw(payload)

        cached = False
        if profiler is not None:
            started = perf_counter()
        if self.policy.should_cache_now(meta):
            self.insert_into_cache(payload, anchors, meta)
            cached = True
        else:
            self.policy.defer_cache(payload, anchors, meta)
        if profiler is not None:
            profiler.add("cache_ops", perf_counter() - started)

        self.stats.bytes_out += len(data)
        if regions:
            self.stats.packets_encoded += 1
            self.stats.regions += len(regions)
            self.stats.matched_bytes += sum(r.length for r in regions)

        return EncodeResult(
            data=data,
            encoded=bool(regions),
            bytes_in=len(payload),
            bytes_out=len(data),
            regions=regions,
            dependencies=dependencies,
            cached=cached,
            shim_overhead=self.shim_overhead,
        )

    def insert_into_cache(self, payload: bytes, anchors: "AnchorSet",
                          meta: PacketMeta) -> None:
        """Cache Update Procedure (Fig. 2 part C / Fig. 7 part C)."""
        self.cache.insert_packet(
            payload, anchors,
            tcp_seq=meta.tcp_seq,
            flow=meta.flow,
            packet_counter=meta.counter,
            external_id=meta.packet_id,
        )

    # -- internal ---------------------------------------------------------

    def _find_regions(self, payload: bytes, anchors: "AnchorSet",
                      meta: PacketMeta) -> Tuple[List[Region], Set[int]]:
        """Redundancy Identification and Elimination (Fig. 2 part B)."""
        regions: List[Region] = []
        dependencies: Set[int] = set()
        pos = 0  # first byte not yet covered by an accepted region
        pairs = anchors.pairs() if hasattr(anchors, "pairs") else anchors
        lookup = self.cache.lookup
        verifier = self.verifier
        for offset, fingerprint in pairs:
            if offset < pos:
                continue  # anchor swallowed by a previous region
            hit = lookup(fingerprint)
            if hit is None:
                continue
            entry, stored = hit
            if not self.policy.entry_eligible(entry, meta):
                self.stats.ineligible_hits += 1
                continue
            match = expand_match(payload, offset, stored, entry.offset,
                                 self.scheme.window, left_limit=pos)
            if match is None:
                self.stats.collisions += 1
                continue
            if match.length <= self.min_region_length:
                continue
            if not self.policy.region_acceptable(match.length, len(payload),
                                                 meta):
                self.stats.ineligible_hits += 1
                continue
            region = Region(
                fingerprint=fingerprint,
                offset_new=match.offset_new,
                offset_stored=match.offset_stored,
                length=match.length,
            )
            if verifier is not None:
                verifier.on_region(meta, entry, region)
            regions.append(region)
            external = self.cache.external_id_for(entry.store_id)
            if external is not None:
                dependencies.add(external)
            pos = match.offset_new + match.length
        return regions, dependencies
