"""Vectorised rolling fingerprints (fast path).

A polynomial rolling hash modulo 2**64 with an odd base ``B``:

    H(i) = sum_{j=0}^{w-1} data[i+j] * B**j        (mod 2**64)

Because ``B`` is odd it is invertible modulo 2**64, so every window
hash of a packet can be computed with a single prefix-sum:

    A[i]   = sum_{j<i} data[j] * B**j              (mod 2**64)
    H(i)   = (A[i+w] - A[i]) * B**(-i)             (mod 2**64)

All of this vectorises in numpy uint64 arithmetic (which wraps modulo
2**64 natively).  A final splitmix64-style mixing step whitens the low
bits so the value-sampling rule (low ``k`` bits zero) selects anchors
uniformly even on highly structured (e.g. ASCII) payloads.

This scheme is *not* a GF(2) Rabin fingerprint, but it has the two
properties byte caching actually relies on: it is a deterministic
content-defined rolling hash, and its selected-anchor rate is ~2**-k.
Hash collisions are immaterial for correctness because the encoder
byte-compares candidate regions, exactly as the paper does.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

_BASE = np.uint64(0x9E3779B97F4A7C15 | 1)
_BASE_INV = np.uint64(pow(int(_BASE), -1, 1 << 64))
_MIX1 = np.uint64(0xFF51AFD7ED558CCD)
_MIX2 = np.uint64(0xC4CEB9FE1A85EC53)

_U64 = np.uint64


class _PowerCache:
    """Lazily grown arrays of B**j and B**-j modulo 2**64."""

    def __init__(self) -> None:
        self.pows = np.ones(1, dtype=np.uint64)
        self.inv_pows = np.ones(1, dtype=np.uint64)

    def ensure(self, n: int) -> None:
        if len(self.pows) >= n:
            return
        size = max(n, 2 * len(self.pows), 4096)
        # Build in Python ints (explicit mod 2**64) to avoid relying on
        # numpy scalar overflow semantics, then freeze into arrays.
        base = int(_BASE)
        base_inv = int(_BASE_INV)
        mod = 1 << 64
        pows = [0] * size
        inv_pows = [0] * size
        pows[0] = 1
        inv_pows[0] = 1
        for i in range(1, size):
            pows[i] = (pows[i - 1] * base) % mod
            inv_pows[i] = (inv_pows[i - 1] * base_inv) % mod
        self.pows = np.array(pows, dtype=np.uint64)
        self.inv_pows = np.array(inv_pows, dtype=np.uint64)


_POWERS = _PowerCache()

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_U64 = np.empty(0, dtype=np.uint64)


class AnchorSet:
    """Selected anchors of one payload, kept as numpy arrays.

    The encoder hot path produces anchors with vectorised numpy code;
    materialising a ``List[Tuple[int, int]]`` with per-element ``int()``
    calls used to dominate the per-packet cost.  This container keeps
    the ``offsets``/``fingerprints`` arrays and converts to Python ints
    at most once (``tolist`` runs in C), lazily, when a consumer needs
    pairs — the conversion is shared between region finding and the
    cache-update pass, so a packet's anchors are materialised once.

    Iteration, ``len``, truthiness, indexing and equality behave like
    the historical list of ``(offset, fingerprint)`` tuples.
    """

    __slots__ = ("offsets", "fingerprints", "_pairs", "_fps_list")

    def __init__(self, offsets: np.ndarray,
                 fingerprints: np.ndarray) -> None:
        self.offsets = offsets
        self.fingerprints = fingerprints
        self._pairs: Optional[List[Tuple[int, int]]] = None
        self._fps_list: Optional[List[int]] = None

    @classmethod
    def empty(cls) -> "AnchorSet":
        return cls(_EMPTY_I64, _EMPTY_U64)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "AnchorSet":
        """Wrap an eagerly materialised pair list (reference paths)."""
        pairs = list(pairs)
        anchor_set = cls(
            np.array([off for off, _ in pairs], dtype=np.int64),
            np.array([fp for _, fp in pairs], dtype=np.uint64))
        anchor_set._pairs = pairs
        return anchor_set

    def fps_list(self) -> List[int]:
        """The fingerprints as Python ints, converted at most once.

        Shared between the table-probe prefilter and the cache-insert
        index update, which both need the same ``tolist``.
        """
        fps = self._fps_list
        if fps is None:
            fps = self._fps_list = self.fingerprints.tolist()
        return fps

    def pairs(self) -> List[Tuple[int, int]]:
        """``(offset, fingerprint)`` pairs as Python ints, cached."""
        if self._pairs is None:
            self._pairs = list(zip(self.offsets.tolist(),
                                   self.fps_list()))
        return self._pairs

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self.pairs())

    def __len__(self) -> int:
        return len(self.offsets)

    def __bool__(self) -> bool:
        return len(self.offsets) > 0

    def __getitem__(self, index: Any) -> Any:
        return self.pairs()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AnchorSet):
            return self.pairs() == other.pairs()
        if isinstance(other, (list, tuple)):
            return self.pairs() == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AnchorSet({self.pairs()!r})"


def _mix(values: np.ndarray) -> np.ndarray:
    """Splitmix64-style finalizer, vectorised over uint64."""
    x = values.copy()
    x ^= x >> _U64(33)
    x *= _MIX1
    x ^= x >> _U64(29)
    x *= _MIX2
    x ^= x >> _U64(32)
    return x


def _mix_inplace(x: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """:func:`_mix` operating in place (``x`` is consumed).

    The batched fingerprint pass works on one hash array covering a
    whole window of packets; recycling ``x`` and one scratch buffer
    instead of allocating five temporaries is a measurable win there.
    """
    np.right_shift(x, _U64(33), out=scratch)
    x ^= scratch
    x *= _MIX1
    np.right_shift(x, _U64(29), out=scratch)
    x ^= scratch
    x *= _MIX2
    np.right_shift(x, _U64(32), out=scratch)
    x ^= scratch
    return x


class PolyFingerprinter:
    """Vectorised rolling fingerprints of a ``window``-byte window."""

    FP_BITS = 64

    def __init__(self, window: int = 16) -> None:
        if window < 2:
            raise ValueError("window must be at least 2 bytes")
        self.window = window
        # Grow-only uint64 workspace for the batched pass.  The batch
        # buffers are megabytes, which glibc serves via mmap and
        # returns to the OS on free — reallocating them every call
        # costs more in page faults than the arithmetic itself.
        self._ws = np.empty(0, dtype=np.uint64)

    def _workspace(self, n: int) -> Tuple[np.ndarray, np.ndarray,
                                          np.ndarray]:
        """Three disjoint uint64 scratch views of ``n`` elements."""
        if len(self._ws) < 3 * n:
            self._ws = np.empty(3 * n, dtype=np.uint64)
        ws = self._ws
        return ws[:n], ws[n:2 * n], ws[2 * n:3 * n]

    def hashes(self, data: bytes) -> np.ndarray:
        """Array of mixed window hashes; index i covers data[i:i+w]."""
        w = self.window
        n = len(data)
        if n < w:
            return np.empty(0, dtype=np.uint64)
        _POWERS.ensure(n + 1)
        arr = np.frombuffer(data, dtype=np.uint8).astype(np.uint64)
        terms = arr * _POWERS.pows[:n]
        prefix = np.empty(n + 1, dtype=np.uint64)
        prefix[0] = 0
        np.cumsum(terms, out=prefix[1:])
        raw = (prefix[w:] - prefix[:-w]) * _POWERS.inv_pows[: n - w + 1]
        return _mix(raw)

    def fingerprint(self, data: bytes) -> int:
        """Fingerprint of a single window (must be >= window bytes)."""
        hashes = self.hashes(data[: self.window])
        if len(hashes) == 0:
            raise ValueError("data shorter than fingerprint window")
        return int(hashes[0])

    def window_fingerprints(self, data: bytes) -> List[Tuple[int, int]]:
        """``(offset, fingerprint)`` for every window position."""
        return list(enumerate(int(h) for h in self.hashes(data)))

    def anchors(self, data: bytes, mask: int) -> AnchorSet:
        """All ``(offset, fingerprint)`` with ``fingerprint & mask == 0``.

        Returned as an :class:`AnchorSet`: the selection stays in numpy
        (one boolean mask + one fancy index over the whole hash array)
        instead of a per-element Python loop.
        """
        hashes = self.hashes(data)
        if len(hashes) == 0:
            return AnchorSet.empty()
        selected = np.nonzero((hashes & _U64(mask)) == 0)[0]
        return AnchorSet(selected, hashes[selected])

    def batch_anchors(self, payloads: Sequence[bytes],
                      mask: int) -> List[AnchorSet]:
        """Anchor sets of a whole window of packets in one numpy pass.

        The rolling hash of a window depends only on the window's bytes
        (``(A[i+w] - A[i]) * B**-i`` cancels the positional factor), so
        the payloads can be concatenated into a single buffer, hashed
        with one prefix-sum, and anchor-selected with one mask — then
        split back per packet.  Windows straddling a packet boundary are
        discarded, which makes the result byte-identical to calling
        :meth:`anchors` per payload.
        """
        if not payloads:
            return []
        w = self.window
        sizes = np.fromiter((len(p) for p in payloads),
                            dtype=np.int64, count=len(payloads))
        starts = np.empty(len(payloads) + 1, dtype=np.int64)
        starts[0] = 0
        np.cumsum(sizes, out=starts[1:])
        total = int(starts[-1])
        if total < w:
            return [AnchorSet.empty() for _ in payloads]
        buf = b"".join(payloads)
        _POWERS.ensure(total + 1)
        terms, prefix_ws, scratch = self._workspace(total + 1)
        terms = terms[:total]
        np.multiply(np.frombuffer(buf, dtype=np.uint8),
                    _POWERS.pows[:total], out=terms)
        prefix = prefix_ws
        prefix[0] = 0
        np.cumsum(terms, out=prefix[1:])
        n_windows = total - w + 1
        raw = np.subtract(prefix[w:], prefix[:-w], out=terms[:n_windows])
        raw *= _POWERS.inv_pows[:n_windows]
        hashes = _mix_inplace(raw, scratch[:n_windows])
        # The prefix buffer is dead after ``raw``; recycle it for the
        # mask step so selection allocates only the boolean temp.
        masked = np.bitwise_and(hashes, _U64(mask), out=prefix[:n_windows])
        sel = np.nonzero(masked == 0)[0]
        # Map each selected global position to its packet, and drop
        # windows that straddle a packet boundary.
        pkt = np.searchsorted(starts, sel, side="right") - 1
        ok = sel + w <= starts[pkt + 1]
        sel = sel[ok]
        pkt = pkt[ok]
        fps = hashes[sel]
        offs = sel - starts[pkt]
        # Per-packet split points: sel/pkt are sorted, so each packet's
        # anchors are one contiguous run.
        bounds = np.searchsorted(pkt, np.arange(len(payloads) + 1))
        out: List[AnchorSet] = []
        for i in range(len(payloads)):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            if lo == hi:
                out.append(AnchorSet.empty())
            else:
                out.append(AnchorSet(offs[lo:hi], fps[lo:hi]))
        return out
