"""Loss-adaptive byte caching (§IX future work).

The paper's conclusion calls for "a tune-able byte caching scheme that
can dynamically adapt how aggressively it compresses packets based on
the packet loss rate in the underlying communication channel".  The
concrete policy lives in
:class:`repro.core.policies.k_distance.AdaptiveKDistancePolicy`
(re-exported here); this module also provides the standalone loss
estimator for callers building their own adaptive schemes.
"""

from __future__ import annotations

from typing import Dict, Optional

from .policies.k_distance import AdaptiveKDistancePolicy

__all__ = ["AdaptiveKDistancePolicy", "LossRateEstimator"]


class LossRateEstimator:
    """EWMA loss-rate estimate from observed TCP retransmissions.

    An encoder-side gateway cannot see channel drops directly, but it
    does see every retransmission (a non-increasing TCP sequence
    number), which under steady state approximates the perceived loss
    rate one RTT late.  Feed :meth:`observe` with each outgoing data
    segment's ``(flow, seq)``.
    """

    def __init__(self, alpha: float = 0.05, initial: float = 0.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.estimate = initial
        self.observations = 0
        self.retransmissions = 0
        self._last_seq: Dict[tuple, int] = {}

    def observe(self, flow: tuple, seq: Optional[int]) -> bool:
        """Record one outgoing segment; returns True if it looked like
        a retransmission."""
        if seq is None or flow is None:
            return False
        self.observations += 1
        last = self._last_seq.get(flow)
        is_retransmission = last is not None and seq <= last
        if last is None or seq > last:
            self._last_seq[flow] = seq
        if is_retransmission:
            self.retransmissions += 1
        sample = 1.0 if is_retransmission else 0.0
        self.estimate += self.alpha * (sample - self.estimate)
        return is_retransmission

    def recommended_k(self, target: float = 0.5, k_min: int = 2,
                      k_max: int = 64) -> int:
        """Reference spacing k ≈ target / p̂, clamped.

        §VII shows aggressive compression backfires once k exceeds the
        mean loss-free run (1/p), hence the sub-1 target.
        """
        if self.estimate <= 0.0:
            return k_max
        return max(k_min, min(k_max, int(round(target / self.estimate))))
