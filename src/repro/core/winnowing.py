"""Winnowing anchor selection (Schleimer et al., SIGMOD 2003).

The paper selects anchors by *value sampling* — keep fingerprints whose
last k bits are zero (§III-A) — which is simple but gives geometric
gaps between anchors: long stretches of a packet can end up with no
anchor at all, and a repeat that falls entirely inside such a stretch
is never found.  *Winnowing*, used by later redundancy-elimination
systems (e.g. EndRE's SampleByte ancestry), slides a window of ``w``
consecutive fingerprints and keeps each window's minimum, guaranteeing
at least one anchor in every ``w`` positions.

Both schemes are content-defined (encoder and decoder select
identically from the same bytes), so they are drop-in alternatives;
``benchmarks/bench_sampling.py`` measures the recall/savings trade.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def winnow_positions(hashes: np.ndarray, window: int) -> List[int]:
    """Indices selected by winnowing over ``hashes``.

    In each window of ``window`` consecutive positions the minimum hash
    is selected (rightmost minimum on ties, per the original paper);
    duplicates collapse.
    """
    n = len(hashes)
    if n == 0:
        return []
    if n <= window:
        return [int(n - 1 - np.argmin(hashes[::-1]))]
    view = np.lib.stride_tricks.sliding_window_view(hashes, window)
    # Rightmost minimum: argmin over the reversed window.
    reversed_argmin = np.argmin(view[:, ::-1], axis=1)
    positions = np.arange(len(view)) + (window - 1 - reversed_argmin)
    return sorted(set(int(p) for p in positions))


def winnow_anchors(fingerprints: List[Tuple[int, int]],
                   window: int) -> List[Tuple[int, int]]:
    """Winnow an ``(offset, fingerprint)`` list (pure-Python fallback)."""
    if not fingerprints:
        return []
    values = np.array([fp for _, fp in fingerprints], dtype=np.uint64)
    selected = winnow_positions(values, window)
    return [fingerprints[index] for index in selected]
