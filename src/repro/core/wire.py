"""Encoded-packet wire format.

§III-B: an encoding field consists of the Rabin fingerprint (8 bytes),
the offset in the new packet (2 bytes), the offset in the stored packet
(2 bytes) and the length of the repeated area (2 bytes) — 14 bytes, and
a region is only worth encoding when it is longer than 14 bytes.

Every payload leaving the encoder carries a 2-byte shim (magic + flags)
so the decoder can tell raw pass-through from encoded payloads.  An
encoded payload adds a 4-byte header (field count + original length)
followed by the field table and the literal (unmatched) bytes in order.

Layout::

    +------+-------+                         raw payload
    | 0xD5 | 0x00  |  payload bytes...
    +------+-------+

    +------+-------+---------+----------+
    | 0xD5 | 0x01  | nfields | orig_len |   encoded payload
    +------+-------+---------+----------+
    | nfields * (fp:8 off_new:2 off_stored:2 len:2) |
    +-----------------------------------------------+
    | literal bytes (gaps between regions, in order)|
    +-----------------------------------------------+
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

#: Region reads may be served zero-copy (see PacketStore.view); both
#: types support the len/slice operations :func:`reconstruct` performs.
ByteSource = Union[bytes, memoryview]

from .region import Region

MAGIC = 0xD5
FLAG_RAW = 0x00
FLAG_ENCODED = 0x01

SHIM_SIZE = 2
#: Extra shim byte carrying the cache epoch when the gateway resilience
#: layer is armed (see repro.gateway.resilience) — gateways charge it to
#: the packet's wire size, and savings accounting must net it out too.
EPOCH_STAMP_SIZE = 1
ENCODED_HEADER_SIZE = 6          # shim + nfields(2) + orig_len(2)
FIELD_SIZE = 14                  # fp(8) + off_new(2) + off_stored(2) + len(2)
MIN_REGION_LENGTH = FIELD_SIZE + 1   # §III-B line B.8: encode only if len > 14

_FIELD_STRUCT = struct.Struct(">QHHH")
_HEADER_STRUCT = struct.Struct(">BBHH")
_RAW_SHIM = bytes((MAGIC, FLAG_RAW))


class WireFormatError(Exception):
    """Encoded payload is malformed (truncated, bad magic, bad counts)."""


@dataclass
class EncodedPayload:
    """Parsed form of an encoded payload."""

    orig_len: int
    regions: List[Region]
    literals: bytes


def encode_payload(payload: bytes, regions: List[Region]) -> bytes:
    """Serialise ``payload`` with ``regions`` replaced by encoding fields.

    ``regions`` must be sorted by ``offset_new`` and non-overlapping.
    """
    if not regions:
        return _RAW_SHIM + payload
    if len(payload) > 0xFFFF:
        raise WireFormatError("payload too large for 2-byte offsets")
    payload_len = len(payload)
    parts = [_HEADER_STRUCT.pack(MAGIC, FLAG_ENCODED, len(regions), payload_len)]
    pos = 0
    literal_parts = []
    pack_field = _FIELD_STRUCT.pack
    append_field = parts.append
    append_literal = literal_parts.append
    for region in regions:
        offset_new = region.offset_new
        if offset_new < pos:
            raise WireFormatError("overlapping or unsorted regions")
        length = region.length
        end_new = offset_new + length
        if end_new > payload_len:
            raise WireFormatError("region exceeds payload")
        append_field(pack_field(region.fingerprint, offset_new,
                                region.offset_stored, length))
        append_literal(payload[pos:offset_new])
        pos = end_new
    literal_parts.append(payload[pos:])
    parts.extend(literal_parts)
    return b"".join(parts)


def wrap_raw(payload: bytes) -> bytes:
    """Shim a payload that is sent without any encoding."""
    return _RAW_SHIM + payload


def is_encoded(data: bytes) -> bool:
    """True when the shimmed payload carries encoding fields."""
    if len(data) < SHIM_SIZE or data[0] != MAGIC:
        raise WireFormatError("missing shim")
    return data[1] == FLAG_ENCODED


def parse_payload(data: bytes) -> "EncodedPayload | bytes":
    """Parse a shimmed payload.

    Returns raw payload ``bytes`` for pass-through packets, or an
    :class:`EncodedPayload` for encoded ones.  Raises
    :class:`WireFormatError` on malformed input (e.g. bit corruption
    that survived into the shim).
    """
    if len(data) < SHIM_SIZE:
        raise WireFormatError("payload shorter than shim")
    if data[0] != MAGIC:
        raise WireFormatError(f"bad magic byte: {data[0]:#x}")
    flags = data[1]
    if flags == FLAG_RAW:
        return data[SHIM_SIZE:]
    if flags != FLAG_ENCODED:
        raise WireFormatError(f"bad flags byte: {flags:#x}")
    if len(data) < ENCODED_HEADER_SIZE:
        raise WireFormatError("truncated encoded header")
    _, _, nfields, orig_len = _HEADER_STRUCT.unpack_from(data, 0)
    fields_end = ENCODED_HEADER_SIZE + nfields * FIELD_SIZE
    if len(data) < fields_end:
        raise WireFormatError("truncated field table")
    regions = []
    for i in range(nfields):
        fp, off_new, off_stored, length = _FIELD_STRUCT.unpack_from(
            data, ENCODED_HEADER_SIZE + i * FIELD_SIZE)
        regions.append(Region(fingerprint=fp, offset_new=off_new,
                              offset_stored=off_stored, length=length))
    return EncodedPayload(orig_len=orig_len, regions=regions,
                          literals=data[fields_end:])


class MissingFingerprintError(Exception):
    """Decoder cache has no (live) entry for a referenced fingerprint."""

    def __init__(self, fingerprint: int) -> None:
        super().__init__(f"missing fingerprint {fingerprint:#018x}")
        self.fingerprint = fingerprint


def reconstruct(parsed: EncodedPayload,
                resolve: Callable[[int], Optional[ByteSource]]) -> bytes:
    """Rebuild the original payload from an :class:`EncodedPayload`.

    ``resolve`` maps a fingerprint to the cached payload it references
    (or ``None`` when the decoder's cache has no entry — the decoder
    counts that packet as undecodable, §IV-A step t3).  It may return a
    ``memoryview`` for zero-copy region reads; only ``len``, slicing
    and buffer concatenation are performed on the result.
    """
    out = bytearray()
    literals = parsed.literals
    lit_pos = 0
    pos = 0
    for region in sorted(parsed.regions, key=lambda r: r.offset_new):
        if region.offset_new < pos:
            raise WireFormatError("overlapping regions in encoded payload")
        gap = region.offset_new - pos
        if lit_pos + gap > len(literals):
            raise WireFormatError("literal underrun")
        out += literals[lit_pos: lit_pos + gap]
        lit_pos += gap
        source = resolve(region.fingerprint)
        if source is None:
            raise MissingFingerprintError(region.fingerprint)
        if region.end_stored > len(source):
            raise WireFormatError("region exceeds cached payload")
        out += source[region.offset_stored: region.end_stored]
        pos = region.end_new
    out += literals[lit_pos:]
    if len(out) != parsed.orig_len:
        raise WireFormatError(
            f"reconstructed {len(out)} bytes, expected {parsed.orig_len}")
    return bytes(out)


def encoded_size(payload_len: int, regions: List[Region]) -> int:
    """Size on the wire of ``payload_len`` bytes with ``regions`` encoded."""
    if not regions:
        return SHIM_SIZE + payload_len
    matched = sum(r.length for r in regions)
    return ENCODED_HEADER_SIZE + FIELD_SIZE * len(regions) + (payload_len - matched)
