"""Rabin fingerprinting over GF(2) (Rabin 1981).

This is the fingerprint the paper (following Spring & Wetherall) uses:
the contents of a sliding ``w``-byte window are interpreted as a
polynomial over GF(2) and reduced modulo a fixed irreducible polynomial
of degree 64.  The implementation is the classic table-driven rolling
form: appending a byte and expiring the oldest byte each cost two table
lookups and a few XORs.

It is the *reference* fingerprinter: algorithmically faithful, pure
Python, and therefore slow.  The benchmarks default to the vectorised
:mod:`repro.core.polyhash` scheme; property tests assert the two agree
on selection statistics.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

# x^64 + x^4 + x^3 + x + 1, a primitive (hence irreducible) polynomial
# over GF(2).  The low 64 coefficient bits are 0x1B; bit 64 is implicit.
IRREDUCIBLE_POLY = (1 << 64) | 0x1B

_MASK64 = (1 << 64) - 1


def _poly_mod(value: int, poly: int = IRREDUCIBLE_POLY) -> int:
    """Reduce the GF(2) polynomial ``value`` modulo ``poly`` (degree 64)."""
    poly_degree = poly.bit_length() - 1
    while value.bit_length() > poly_degree:
        shift = value.bit_length() - poly.bit_length()
        value ^= poly << shift
    return value


#: window size -> (append_table, expire_table), shared by all instances.
_TABLE_CACHE: Dict[int, Tuple[List[int], List[int]]] = {}


def _build_tables(window: int) -> Tuple[List[int], List[int]]:
    """Precompute the append and expire reduction tables.

    ``append_table[x]`` reduces the 8 bits that overflow past degree 63
    when the fingerprint is shifted left by one byte.  ``expire_table[b]``
    is ``(b << 8*window) mod P``: XORing it removes the contribution of
    the byte leaving the window (after the shift has been applied).
    """
    append_table = [_poly_mod(x << 64) for x in range(256)]
    expire_table = [_poly_mod(b << (8 * window)) for b in range(256)]
    return append_table, expire_table


class RabinFingerprinter:
    """Rolling GF(2) Rabin fingerprints of a ``window``-byte window."""

    FP_BITS = 64

    def __init__(self, window: int = 16) -> None:
        if window < 2:
            raise ValueError("window must be at least 2 bytes")
        self.window = window
        tables = _TABLE_CACHE.get(window)
        if tables is None:
            tables = _build_tables(window)
            _TABLE_CACHE[window] = tables
        self._append, self._expire = tables

    def fingerprint(self, data: bytes) -> int:
        """Fingerprint of exactly one window (``len(data)`` arbitrary)."""
        fp = 0
        append = self._append
        for byte in data:
            fp = (((fp << 8) & _MASK64) | byte) ^ append[fp >> 56]
        return fp

    def window_fingerprints(self, data: bytes) -> Iterator[Tuple[int, int]]:
        """Yield ``(offset, fingerprint)`` for every window position.

        ``offset`` is the index of the window's first byte.  Data shorter
        than the window yields nothing.
        """
        w = self.window
        if len(data) < w:
            return
        append = self._append
        expire = self._expire
        fp = self.fingerprint(data[:w])
        yield 0, fp
        for i in range(w, len(data)):
            incoming = data[i]
            outgoing = data[i - w]
            fp = ((((fp << 8) & _MASK64) | incoming) ^ append[fp >> 56]) ^ expire[outgoing]
            yield i - w + 1, fp

    def anchors(self, data: bytes, mask: int) -> List[Tuple[int, int]]:
        """All ``(offset, fingerprint)`` whose low bits under ``mask`` are 0.

        This is the value-sampling rule of §III-A: only fingerprints whose
        last ``k`` bits are zero are retained.
        """
        return [(off, fp) for off, fp in self.window_fingerprints(data)
                if fp & mask == 0]
