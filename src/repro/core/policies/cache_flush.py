"""Cache Flush encoding (§V-A).

Flush the encoder cache upon detecting a TCP retransmission, so that a
retransmitted segment is never encoded against a succeeding segment or
itself — it (and everything until the cache refills) goes out raw.

Retransmissions are detected exactly as the paper describes: the policy
tracks the highest TCP sequence number seen per flow, and any outgoing
segment whose sequence number *decreases* triggers the flush.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from .base import EncoderPolicy, PacketMeta

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import ByteCache


class CacheFlushPolicy(EncoderPolicy):
    """Flush-on-retransmission policy.

    The detector tracks the sequence number of the *last* outgoing
    segment per flow and flushes on any non-increase.  Equality counts:
    a segment retransmitted twice in a row repeats the same (not a
    lower) sequence number, and missing it would let the copy be
    encoded against itself.  Tracking the last (rather than the
    highest-ever) sequence number means an ascending burst of hole
    retransmissions triggers exactly one flush, after which the
    retransmissions themselves rebuild the cache — matching the
    paper's §VII narrative where, after the flush at IP24, IP25 is
    "encoded using only IP24".
    """

    name = "cache_flush"
    verify_oracles = ("circular_dependency", "cache_flush")

    def __init__(self) -> None:
        super().__init__()
        self._last_seq: Dict[tuple, int] = {}
        self.flushes_triggered = 0

    def before_packet(self, meta: PacketMeta, cache: "ByteCache") -> None:
        if meta.tcp_seq is None or meta.flow is None:
            return
        last = self._last_seq.get(meta.flow)
        if last is not None and meta.tcp_seq <= last:
            cache.flush()
            self.flushes_triggered += 1
        self._last_seq[meta.flow] = meta.tcp_seq
