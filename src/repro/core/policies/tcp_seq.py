"""TCP Sequence Number encoding (§V-B, Fig. 7).

The cache stores the TCP sequence number of the segment each
fingerprint came from (Fig. 7 line C.6), and a repeated region is only
eliminated when it is present in a *strictly preceding* segment of the
same flow (line B.7: ``TCPseq_new > TCPseq_stored``).  A retransmitted
segment may therefore still be encoded — but only against earlier
data — which breaks the circular dependencies without flushing.

Sequence numbers in the simulator are absolute byte offsets and never
wrap, so plain integer comparison implements line B.7 faithfully.

Cross-flow encodings are permitted by default (sequence numbers from
different connections are incomparable, and inter-flow redundancy is a
selling point of byte caching, §I); ``strict_cross_flow=True`` forbids
them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import EncoderPolicy, PacketMeta

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import CacheEntry


class TcpSeqPolicy(EncoderPolicy):
    """Encode only against strictly earlier TCP segments."""

    name = "tcp_seq"
    verify_oracles = ("circular_dependency", "tcp_seq")

    def __init__(self, strict_cross_flow: bool = False) -> None:
        super().__init__()
        self.strict_cross_flow = strict_cross_flow

    def entry_eligible(self, entry: "CacheEntry",
                       meta: PacketMeta) -> bool:
        if meta.tcp_seq is None:
            # Non-TCP traffic carries no ordering information; the
            # paper's Fig. 7 guard cannot be evaluated, so do not encode.
            return False
        if entry.flow != meta.flow:
            return not self.strict_cross_flow
        if entry.tcp_seq is None:
            return False
        return entry.tcp_seq < meta.tcp_seq
