"""Naive Spring & Wetherall policy (§III, Fig. 2).

No restriction at all on which cached packets may serve as encoding
sources.  Under loss this produces the circular dependencies of §IV:
a retransmitted segment is encoded against a succeeding copy of itself,
the decoder can never reconstruct it, and the TCP connection stalls.
Included as the baseline whose failure Figure 6 quantifies.
"""

from __future__ import annotations

from .base import EncoderPolicy


class NaivePolicy(EncoderPolicy):
    """The unmodified algorithm — every hook keeps its default."""

    name = "naive"
