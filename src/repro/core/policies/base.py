"""Policy hook interfaces for the encoder and decoder.

The paper's algorithms differ only in *when a cached packet may be
referenced* and *when the cache is updated or reset*.  Expressing them
as hooks keeps one encoder implementation (faithful to Fig. 2) and lets
the evaluation swap algorithms by swapping policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import ByteCache, CacheEntry
    from ..encoder import ByteCachingEncoder
    from ..decoder import ByteCachingDecoder


@dataclass
class PacketMeta:
    """What the gateway knows about the packet being processed.

    ``tcp_seq`` is ``None`` for non-TCP traffic (e.g. UDP streaming,
    where only sequence-agnostic policies such as k-distance apply).
    ``counter`` is a per-gateway monotone index over *data* packets,
    assigned by the gateway; sequence numbers never wrap in simulation
    so they are plain integers.
    """

    packet_id: int
    flow: Optional[tuple] = None
    tcp_seq: Optional[int] = None
    counter: int = 0


class PolicyServices:
    """Gateway services a policy may use (control channel, clock)."""

    def __init__(self,
                 send_control: Optional[Callable[[str, object], None]] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self._send_control = send_control
        self._clock = clock

    def send_control(self, kind: str, payload: object) -> None:
        if self._send_control is not None:
            self._send_control(kind, payload)

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0


class EncoderPolicy:
    """Base (naive) encoder policy: the unmodified Fig. 2 algorithm.

    Every hook has the permissive default, so this base class *is* the
    naive Spring & Wetherall behaviour that §IV shows can livelock.
    """

    name = "naive"

    #: Safety oracles (repro.verify.oracles) armed for this policy when
    #: a run sets ``ExperimentConfig(verify=True)``.  The default is the
    #: policy-independent §IV circular-dependency property — which the
    #: naive base policy *violates* under loss; that is exactly how the
    #: verification layer pinpoints the livelock.  Policies whose
    #: robustness comes from *recovery* rather than emission-time safety
    #: (informed marking, NACK repair) override this to ``()`` because
    #: they legally emit self-referencing regions and repair them later.
    verify_oracles: Tuple[str, ...] = ("circular_dependency",)

    def __init__(self) -> None:
        self.services = PolicyServices()
        self.encoder: "Optional[ByteCachingEncoder]" = None

    def attach_encoder(self, encoder: "ByteCachingEncoder") -> None:
        self.encoder = encoder

    def attach_services(self, services: PolicyServices) -> None:
        self.services = services

    # -- hooks, in the order the encoder calls them ------------------------

    def before_packet(self, meta: PacketMeta, cache: "ByteCache") -> None:
        """Called before the elimination pass (Cache Flush acts here)."""

    def may_encode(self, meta: PacketMeta) -> bool:
        """False to force this packet out unencoded (k-distance refs)."""
        return True

    def entry_eligible(self, entry: "CacheEntry", meta: PacketMeta) -> bool:
        """Whether a cache hit may be used as the encoding source."""
        return True

    def region_acceptable(self, length: int, payload_len: int,
                          meta: PacketMeta) -> bool:
        """Whether an expanded match may be emitted as an encoding field.

        Called with the final region length; policies can veto, e.g.
        k-distance refuses whole-payload matches (pure duplicates are
        retransmissions and must stay decodable, §V-C).
        """
        return True

    def should_cache_now(self, meta: PacketMeta) -> bool:
        """False to defer the cache-update pass (ACK-gated extension)."""
        return True

    def defer_cache(self, payload: bytes, anchors: List[Tuple[int, int]],
                    meta: PacketMeta) -> None:
        """Stash a deferred cache update (only called when deferred)."""

    def wire_tag(self, meta: PacketMeta) -> Optional[int]:
        """Optional small integer shipped with the encoded packet.

        The ACK-gated scheme uses it to version its references: the tag
        is the commit point (cumulative ACK) the encoder's cache state
        reflects, and the decoder replays its own deferred commits up to
        exactly that point before decoding.  Costs 4 bytes of wire
        overhead per tagged packet (charged by the gateway).
        """
        return None

    # -- asynchronous inputs ----------------------------------------------

    def on_reverse_packet(self, pkt: Any, cache: "ByteCache") -> None:
        """Observe a packet flowing in the reverse direction (ACKs)."""

    def on_control(self, kind: str, payload: object, cache: "ByteCache") -> None:
        """Handle a control message from the peer gateway."""

class DecoderPolicy:
    """Base decoder policy: drop undecodable packets silently.

    That is precisely the behaviour of §IV-A step t3 and what the
    paper's three algorithms assume; the informed-marking and NACK
    extensions override the hooks.
    """

    name = "drop"

    def __init__(self) -> None:
        self.services = PolicyServices()
        self.decoder: "Optional[ByteCachingDecoder]" = None

    def attach_decoder(self, decoder: "ByteCachingDecoder") -> None:
        self.decoder = decoder

    def attach_services(self, services: PolicyServices) -> None:
        self.services = services

    def on_undecodable(self, missing_fingerprints: List[int], pkt: Any,
                       cache: "ByteCache") -> bool:
        """Called when a packet references unknown fingerprints.

        Return True if the policy took ownership of the packet (e.g.
        buffered it awaiting repair); False to drop it.
        """
        return False

    def on_checksum_mismatch(self, suspect_fingerprints: List[int],
                             pkt: Any, cache: "ByteCache") -> bool:
        """Called when reconstruction succeeded but produced wrong bytes.

        The referenced fingerprints resolved to *stale* entries (the
        replacing packet never reached this side).  Return True to take
        ownership of the packet, False to drop it.
        """
        return False

    def should_cache_now(self, meta: PacketMeta) -> bool:
        """False to defer caching a decoded payload (ACK-gated mirror)."""
        return True

    def defer_cache(self, payload: bytes, anchors: List[Tuple[int, int]],
                    meta: PacketMeta) -> None:
        """Stash a deferred decoder-cache update."""

    def on_reverse_packet(self, pkt: Any, cache: "ByteCache") -> None:
        """Observe a packet flowing in the reverse direction (ACKs)."""

    def on_wire_tag(self, tag: int, meta: PacketMeta,
                    cache: "ByteCache") -> None:
        """React to the encoder's wire tag before this packet is decoded
        (see :meth:`EncoderPolicy.wire_tag`)."""

    def on_control(self, kind: str, payload: object, cache: "ByteCache") -> None:
        """Handle a control message from the peer gateway."""
