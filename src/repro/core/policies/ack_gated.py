"""ACK-gated caching (§VIII, second "additional potential approach").

"A second solution could consist in not caching a packet until it has
been successfully acknowledged as received by the other endpoint."

The encoder observes the reverse-path TCP ACK stream (it is on-path for
both directions) and commits a segment's fingerprints to the cache only
once the receiver has cumulatively acknowledged past the end of that
segment.  An ACKed byte range implies the client received — and the
co-located decoder therefore decoded and cached — the carrying segment,
so encodings almost never reference state the decoder lacks.  The cost
is a cache that trails the stream by at least one RTT, forgoing the
short-range redundancy that dominates retransmission-heavy traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from .base import DecoderPolicy, EncoderPolicy, PacketMeta

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import ByteCache


class AckGatedPolicy(EncoderPolicy):
    """Defer cache updates until the segment is cumulatively ACKed."""

    name = "ack_gated"

    def __init__(self, max_pending: int = 4096) -> None:
        super().__init__()
        self.max_pending = max_pending
        # flow -> list of (end_seq, payload, anchors, meta), append order
        self._pending: Dict[tuple, List[tuple]] = {}
        # flow -> the cumulative ACK our cache state reflects.  Shipped
        # as the wire tag so the decoder can replay its own deferred
        # commits to exactly this point before decoding (without it,
        # the decoder — which sees each ACK one link earlier — races
        # ahead and every contended fingerprint reconstructs wrongly).
        self._commit_point: Dict[tuple, int] = {}
        self.committed = 0
        self.dropped_pending = 0

    def wire_tag(self, meta: PacketMeta) -> "int | None":
        if meta.flow is None or meta.tcp_seq is None:
            return None
        return self._commit_point.get(meta.flow, 0)

    def should_cache_now(self, meta: PacketMeta) -> bool:
        # Only TCP data can be gated on ACKs; anything else caches now.
        return meta.tcp_seq is None or meta.flow is None

    def defer_cache(self, payload: bytes, anchors: List[Tuple[int, int]],
                    meta: PacketMeta) -> None:
        queue = self._pending.setdefault(meta.flow, [])
        queue.append((meta.tcp_seq + len(payload), payload, anchors, meta))
        if len(queue) > self.max_pending:
            queue.pop(0)
            self.dropped_pending += 1

    def on_reverse_packet(self, pkt: Any, cache: "ByteCache") -> None:
        segment = pkt.tcp
        if segment is None or not segment.has_ack:
            return
        # The reverse flow's identity mirrors the forward one.
        flow = (pkt.dst, segment.dst_port, pkt.src, segment.src_port)
        ack = segment.ack
        if ack > self._commit_point.get(flow, 0):
            self._commit_point[flow] = ack
        queue = self._pending.get(flow)
        if not queue:
            return
        remaining = []
        for end_seq, payload, anchors, meta in queue:
            if end_seq <= ack:
                assert self.encoder is not None
                self.encoder.insert_into_cache(payload, anchors, meta)
                self.committed += 1
            else:
                remaining.append((end_seq, payload, anchors, meta))
        self._pending[flow] = remaining


class AckGatedDecoderPolicy(DecoderPolicy):
    """Decoder mirror of :class:`AckGatedPolicy`.

    The decoder must commit its cache updates at *exactly the same
    point in the ACK stream* as the encoder's state that encoded each
    packet.  Committing eagerly (on seeing the ACK, or on arrival)
    does not work: the decoder sees every ACK one link-delay before the
    encoder does, so its cache races ahead and contended fingerprints
    reconstruct wrong bytes.  Instead, this mirror buffers decoded
    payloads and replays commits up to the encoder's *wire tag* — the
    cumulative-ACK commit point the encoder stamped on the packet —
    immediately before decoding it, making the two caches replay the
    identical update prefix in the identical order.
    """

    name = "ack_gated"

    def __init__(self, max_pending: int = 4096) -> None:
        super().__init__()
        self.max_pending = max_pending
        self._pending: Dict[tuple, List[tuple]] = {}
        self.committed = 0
        self.dropped_pending = 0

    def should_cache_now(self, meta: PacketMeta) -> bool:
        return meta.tcp_seq is None or meta.flow is None

    def defer_cache(self, payload: bytes, anchors: List[Tuple[int, int]],
                    meta: PacketMeta) -> None:
        queue = self._pending.setdefault(meta.flow, [])
        queue.append((meta.tcp_seq + len(payload), payload, anchors, meta))
        if len(queue) > self.max_pending:
            queue.pop(0)
            self.dropped_pending += 1

    def on_wire_tag(self, tag: int, meta: PacketMeta,
                    cache: "ByteCache") -> None:
        queue = self._pending.get(meta.flow)
        if not queue:
            return
        remaining = []
        for end_seq, payload, anchors, entry_meta in queue:
            if end_seq <= tag:
                assert self.decoder is not None
                self.decoder.insert_anchors(payload, anchors, entry_meta)
                self.committed += 1
            else:
                remaining.append((end_seq, payload, anchors, entry_meta))
        self._pending[meta.flow] = remaining
