"""k-distance encoding (§V-C, Fig. 9).

Inspired by MPEG's I-frames: every k-th packet is a *reference*, sent
unencoded; "the subsequent k−1 packets can be encoded using the
immediately preceding reference, and any of the previous packets until
that reference", so a single loss invalidates at most the rest of one
k-packet group.

For TCP traffic the packet positions are *stream* positions: the byte
stream is divided into groups of k segments (k·MSS bytes), the first
segment of each group is the reference, and a segment may only be
encoded against strictly earlier segments of its own group.  Two
properties of §VII pin this reading down: as k grows "the behavior of
the k-distance algorithm must match that of the TCP sequence number
algorithm" (strictly-earlier-segment eligibility with the group window
removed is exactly §V-B), and a retransmission can never be encoded
against a succeeding copy of itself, which is what keeps the scheme
correct under loss.

For non-TCP traffic (no sequence numbers — the UDP streaming case the
paper highlights) the positions are arrival counters: every k-th
datagram through the encoder is a reference and eligibility is
counter-windowed.  Duplicate-payload matches are refused in this mode
because, with no stream ordering available, a duplicate is
indistinguishable from a retransmitted repair whose original may be the
very loss being repaired.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import EncoderPolicy, PacketMeta

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import ByteCache, CacheEntry

DEFAULT_MSS = 1460


class KDistancePolicy(EncoderPolicy):
    """Reference every ``k`` packets; encode only within the group."""

    name = "k_distance"
    verify_oracles = ("circular_dependency", "k_distance")

    def __init__(self, k: int = 8, mss: int = DEFAULT_MSS) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if mss < 1:
            raise ValueError("mss must be >= 1")
        super().__init__()
        self.k = k
        self.mss = mss
        #: Per-flow stream base: the sequence number of the first data
        #: byte observed (learned from the first segment of each flow).
        self._flow_base: dict = {}
        self._last_reference_counter = -1
        self._references_sent = 0

    @property
    def references_sent(self) -> int:
        return self._references_sent

    # -- group geometry (TCP / stream mode) --------------------------------

    def _group_bytes(self) -> int:
        return self.k * self.mss

    def _base_for(self, meta: PacketMeta) -> int:
        base = self._flow_base.get(meta.flow)
        if base is None or meta.tcp_seq < base:
            base = meta.tcp_seq
            self._flow_base[meta.flow] = base
        return base

    def group_start(self, seq: int, base: int) -> int:
        """First stream byte of the k-segment group containing ``seq``."""
        return base + ((seq - base) // self._group_bytes()) \
            * self._group_bytes()

    def is_reference(self, meta: PacketMeta) -> bool:
        if meta.tcp_seq is not None:
            base = self._base_for(meta)
            # The first segment of each group is the reference.
            return meta.tcp_seq - self.group_start(meta.tcp_seq, base) \
                < self.mss
        # Counter mode: a reference whenever k packets have passed since
        # the last one (expressed as a distance so the adaptive subclass
        # can retune k without skipping or bunching references).
        return (self._last_reference_counter < 0
                or meta.counter - self._last_reference_counter >= self.k)

    # -- policy hooks -------------------------------------------------------

    def may_encode(self, meta: PacketMeta) -> bool:
        if self.is_reference(meta):
            if meta.tcp_seq is None:
                self._last_reference_counter = meta.counter
            self._references_sent += 1
            return False
        return True

    def entry_eligible(self, entry: "CacheEntry",
                       meta: PacketMeta) -> bool:
        if meta.tcp_seq is not None:
            # Stream mode: sources are strictly earlier segments of the
            # same flow, no older than the group's reference.
            if entry.flow != meta.flow or entry.tcp_seq is None:
                return False
            base = self._base_for(meta)
            return (self.group_start(meta.tcp_seq, base) <= entry.tcp_seq
                    < meta.tcp_seq)
        # Counter mode (UDP): anything since the latest reference.
        return entry.packet_counter >= self._last_reference_counter

    def region_acceptable(self, length: int, payload_len: int,
                          meta: PacketMeta) -> bool:
        if meta.tcp_seq is not None:
            return True  # stream ordering already forbids self-matches
        # Counter mode: refuse whole-payload duplicates (see module doc).
        return length < payload_len


class AdaptiveKDistancePolicy(KDistancePolicy):
    """Tune-able k-distance (§IX future work).

    The conclusion calls for "a tune-able byte caching scheme that can
    dynamically adapt how aggressively it compresses packets based on
    the packet loss rate".  This policy estimates the loss rate from
    observed TCP retransmissions (non-increasing sequence numbers, the
    same signal Cache Flush uses) and sets

        k  =  clamp(round(target / p_hat), k_min, k_max)

    so the reference spacing tracks the expected loss-free run length.
    §VII's analysis shows perceived loss overtakes the savings once
    k > 1/p, hence ``target`` defaults below 1.
    """

    name = "adaptive_k"

    def __init__(self, k_min: int = 2, k_max: int = 64, target: float = 0.5,
                 ewma_alpha: float = 0.05, initial_loss: float = 0.02,
                 mss: int = DEFAULT_MSS) -> None:
        super().__init__(k=k_max, mss=mss)
        self.k_min = k_min
        self.k_max = k_max
        self.target = target
        self.ewma_alpha = ewma_alpha
        self._loss_estimate = initial_loss
        self._highest_seq: dict = {}
        self.adaptations = 0
        self._retune()

    @property
    def loss_estimate(self) -> float:
        return self._loss_estimate

    def before_packet(self, meta: PacketMeta, cache: "ByteCache") -> None:
        if meta.tcp_seq is None or meta.flow is None:
            return
        highest = self._highest_seq.get(meta.flow)
        is_retransmission = highest is not None and meta.tcp_seq <= highest
        if highest is None or meta.tcp_seq > highest:
            self._highest_seq[meta.flow] = meta.tcp_seq
        sample = 1.0 if is_retransmission else 0.0
        self._loss_estimate += self.ewma_alpha * (sample - self._loss_estimate)
        self._retune()

    def _retune(self) -> None:
        if self._loss_estimate <= 0.0:
            new_k = self.k_max
        else:
            new_k = int(round(self.target / self._loss_estimate))
        new_k = max(self.k_min, min(self.k_max, new_k))
        if new_k != self.k:
            self.k = new_k
            self.adaptations += 1
