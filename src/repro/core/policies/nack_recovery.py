"""NACK recovery (§VIII, first "additional potential approach").

"A first solution could consist in having the decoder — upon detecting
a missing packet — sending a notification message to the encoder to
retrieve a copy of the missing actual content."

Decoder half: an undecodable packet is *buffered* (bounded, with a
timeout) and a NACK listing the missing fingerprints goes to the
encoder.  Encoder half: on a NACK it looks the fingerprints up in its
own cache and returns the raw cached payloads as repair messages.  When
a repair arrives the decoder inserts the payload into its cache and
retries every buffered packet.

The paper speculates the extra round trip still leaves "a large number
of dependencies affected by the loss"; the extension benchmark
(`benchmarks/bench_extensions.py`) measures exactly that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from .base import DecoderPolicy, EncoderPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import ByteCache

CONTROL_KIND_NACK = "nack"
CONTROL_KIND_REPAIR = "repair"


class NackRecoveryEncoderPolicy(EncoderPolicy):
    """Encoder half: answer NACKs with raw cached payloads.

    Repairs are rate-limited per fingerprint (``repair_suppression``
    seconds): bursts of undecodable packets referencing the same lost
    carrier would otherwise request the same payload dozens of times
    within one RTT, and repairs ride the constrained forward link.
    """

    name = "nack_recovery"
    # Recovery-based scheme: emission is naive (self-references under
    # loss are legal — the decoder NACKs and the raw repair resolves
    # them), so the emission-time oracles do not apply.
    verify_oracles = ()

    def __init__(self, max_repairs_per_nack: int = 8,
                 repair_suppression: float = 0.1) -> None:
        super().__init__()
        self.max_repairs_per_nack = max_repairs_per_nack
        self.repair_suppression = repair_suppression
        self._last_repair: dict = {}
        self.nacks_received = 0
        self.repairs_sent = 0
        self.repairs_suppressed = 0
        self.repairs_unavailable = 0

    def on_control(self, kind: str, payload: object,
                   cache: "ByteCache") -> None:
        if kind != CONTROL_KIND_NACK:
            return
        self.nacks_received += 1
        now = self.services.now()
        fingerprints: List[int] = list(payload)[: self.max_repairs_per_nack]  # type: ignore[arg-type]
        repairs = []
        for fingerprint in fingerprints:
            last = self._last_repair.get(fingerprint)
            if last is not None and now - last < self.repair_suppression:
                self.repairs_suppressed += 1
                continue
            hit = cache.lookup(fingerprint)
            if hit is None:
                self.repairs_unavailable += 1
                continue
            _, stored = hit
            self._last_repair[fingerprint] = now
            repairs.append((fingerprint, stored))
        if repairs:
            self.repairs_sent += len(repairs)
            self.services.send_control(CONTROL_KIND_REPAIR, repairs)


class PendingPacket:
    """A buffered undecodable packet awaiting repairs.

    ``verify_by_lookup`` distinguishes the two failure modes: a packet
    whose fingerprints were *missing* becomes decodable as soon as each
    fingerprint resolves (a repair or ordinary traffic may provide it);
    a packet that failed its checksum resolved to *stale* entries, so
    only an explicit repair (which overwrites the stale entry) counts.
    """

    __slots__ = ("pkt", "missing", "deadline", "verify_by_lookup")

    def __init__(self, pkt: Any, missing: List[int], deadline: float,
                 verify_by_lookup: bool = True) -> None:
        self.pkt = pkt
        self.missing = set(missing)
        self.deadline = deadline
        self.verify_by_lookup = verify_by_lookup


class NackRecoveryDecoderPolicy(DecoderPolicy):
    """Decoder half: buffer undecodable packets and request repairs."""

    name = "nack_recovery"

    def __init__(self, buffer_limit: int = 64, timeout: float = 1.0,
                 retry: Optional[Callable[[object], None]] = None) -> None:
        super().__init__()
        self.buffer_limit = buffer_limit
        self.timeout = timeout
        # Called with a buffered packet once its dependencies are
        # repaired; the gateway wires this to "re-inject the packet".
        self.retry = retry
        self._buffer: List[PendingPacket] = []
        self.nacks_sent = 0
        self.repairs_received = 0
        self.timeouts = 0
        self.retries = 0

    def on_undecodable(self, missing_fingerprints: List[int], pkt: Any,
                       cache: "ByteCache") -> bool:
        return self._buffer_and_nack(missing_fingerprints, pkt,
                                     verify_by_lookup=True)

    def on_checksum_mismatch(self, suspect_fingerprints: List[int],
                             pkt: Any, cache: "ByteCache") -> bool:
        # Stale entries: request fresh copies of everything referenced.
        # Only the repair itself proves freshness (lookups already
        # "succeed" against the stale entries).
        return self._buffer_and_nack(suspect_fingerprints, pkt,
                                     verify_by_lookup=False)

    def on_control(self, kind: str, payload: object,
                   cache: "ByteCache") -> None:
        if kind != CONTROL_KIND_REPAIR:
            return
        assert self.decoder is not None
        from .base import PacketMeta

        repaired = set()
        for fingerprint, raw_payload in payload:  # type: ignore[union-attr]
            self.repairs_received += 1
            repaired.add(fingerprint)
            # A repair is an out-of-band raw payload: cache it exactly
            # as if it had arrived as a normal unencoded packet.
            self.decoder.insert_raw_payload(raw_payload, PacketMeta(packet_id=-1))
        self._retry_ready(cache, repaired)

    # -- internal ---------------------------------------------------------

    def _buffer_and_nack(self, fingerprints: List[int], pkt: Any,
                         verify_by_lookup: bool) -> bool:
        if pkt is None:
            return False
        self._expire()
        if len(self._buffer) >= self.buffer_limit:
            return False  # buffer full: fall back to dropping
        already_requested = set()
        for pending in self._buffer:
            already_requested |= pending.missing
        self._buffer.append(PendingPacket(
            pkt, fingerprints, self.services.now() + self.timeout,
            verify_by_lookup=verify_by_lookup))
        # Only NACK fingerprints not already awaiting a repair; the
        # in-flight repair will release this packet too.
        fresh = [fp for fp in fingerprints if fp not in already_requested]
        if fresh:
            self.services.send_control(CONTROL_KIND_NACK, fresh)
            self.nacks_sent += 1
        return True

    def _retry_ready(self, cache: "ByteCache", repaired: set) -> None:
        self._expire()
        still_waiting = []
        for pending in self._buffer:
            pending.missing -= repaired
            if pending.verify_by_lookup:
                pending.missing = {fp for fp in pending.missing
                                   if cache.lookup(fp) is None}
            if pending.missing:
                still_waiting.append(pending)
            elif self.retry is not None:
                self.retries += 1
                self.retry(pending.pkt)
        self._buffer = still_waiting

    def _expire(self) -> None:
        now = self.services.now()
        kept = []
        for pending in self._buffer:
            if pending.deadline < now:
                self.timeouts += 1
            else:
                kept.append(pending)
        self._buffer = kept
