"""Encoding/decoding policies: the paper's three algorithms (§V), the
naive baseline (§III), and the extension schemes discussed in §VIII/IX.
"""

from typing import Any, Callable, Dict, Optional, Tuple

from .ack_gated import AckGatedDecoderPolicy, AckGatedPolicy
from .base import DecoderPolicy, EncoderPolicy, PacketMeta, PolicyServices
from .cache_flush import CacheFlushPolicy
from .informed_marking import (InformedMarkingDecoderPolicy,
                               InformedMarkingEncoderPolicy)
from .k_distance import AdaptiveKDistancePolicy, KDistancePolicy
from .naive import NaivePolicy
from .nack_recovery import (NackRecoveryDecoderPolicy,
                            NackRecoveryEncoderPolicy)
from .tcp_seq import TcpSeqPolicy

#: Registry of encoder policies by name.  ``make_policy_pair`` builds a
#: matching (encoder_policy, decoder_policy) tuple; most schemes use the
#: default drop-on-missing decoder.
ENCODER_POLICIES: Dict[str, Callable[..., EncoderPolicy]] = {
    "naive": NaivePolicy,
    "cache_flush": CacheFlushPolicy,
    "tcp_seq": TcpSeqPolicy,
    "k_distance": KDistancePolicy,
    "adaptive_k": AdaptiveKDistancePolicy,
    "informed_marking": InformedMarkingEncoderPolicy,
    "ack_gated": AckGatedPolicy,
    "nack_recovery": NackRecoveryEncoderPolicy,
}


def make_policy_pair(name: str,
                     **kwargs: Any) -> Tuple[EncoderPolicy, DecoderPolicy]:
    """Instantiate the encoder/decoder policy pair for a scheme name.

    ``kwargs`` go to the encoder policy constructor (e.g. ``k=8`` for
    k-distance), except decoder-prefixed keys (``decoder_*``) which go
    to the decoder policy of schemes that have one.
    """
    if name not in ENCODER_POLICIES:
        raise ValueError(
            f"unknown policy {name!r}; known: {sorted(ENCODER_POLICIES)}")
    decoder_kwargs = {key[len("decoder_"):]: value
                      for key, value in kwargs.items()
                      if key.startswith("decoder_")}
    encoder_kwargs = {key: value for key, value in kwargs.items()
                      if not key.startswith("decoder_")}
    encoder_policy = ENCODER_POLICIES[name](**encoder_kwargs)
    if name == "informed_marking":
        decoder_policy: DecoderPolicy = InformedMarkingDecoderPolicy(**decoder_kwargs)
    elif name == "nack_recovery":
        decoder_policy = NackRecoveryDecoderPolicy(**decoder_kwargs)
    elif name == "ack_gated":
        decoder_policy = AckGatedDecoderPolicy(**decoder_kwargs)
    else:
        decoder_policy = DecoderPolicy(**decoder_kwargs)
    return encoder_policy, decoder_policy


__all__ = [
    "AckGatedDecoderPolicy",
    "AckGatedPolicy",
    "AdaptiveKDistancePolicy",
    "CacheFlushPolicy",
    "DecoderPolicy",
    "EncoderPolicy",
    "ENCODER_POLICIES",
    "InformedMarkingDecoderPolicy",
    "InformedMarkingEncoderPolicy",
    "KDistancePolicy",
    "NaivePolicy",
    "NackRecoveryDecoderPolicy",
    "NackRecoveryEncoderPolicy",
    "PacketMeta",
    "PolicyServices",
    "TcpSeqPolicy",
    "make_policy_pair",
]
