"""Informed marking (Lumezanu et al., IMC 2010 — related work §VIII).

The decoder, upon failing to decode a packet, reports the missing
fingerprints to the encoder over the gateway control channel.  The
encoder marks those cache entries unusable for future encodings, so the
dependency chain rooted at a lost packet is cut after one round trip.
Unlike the paper's three schemes this needs a (lossy) feedback channel;
it is implemented here as the comparison baseline the paper discusses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

from .base import DecoderPolicy, EncoderPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import ByteCache

CONTROL_KIND_MARK = "mark"


class InformedMarkingEncoderPolicy(EncoderPolicy):
    """Encoder half: honour mark messages from the decoder."""

    name = "informed_marking"
    # Robustness comes from the mark-and-avoid feedback loop, not from
    # emission-time safety: until a mark arrives, a retransmission may
    # legally be encoded against its own lost copy (and repaired after
    # one RTT), so the emission-time oracles do not apply.
    verify_oracles = ()

    def __init__(self) -> None:
        super().__init__()
        self.marks_received = 0

    def on_control(self, kind: str, payload: object,
                   cache: "ByteCache") -> None:
        if kind != CONTROL_KIND_MARK:
            return
        fingerprints: List[int] = list(payload)  # type: ignore[arg-type]
        for fingerprint in fingerprints:
            if cache.mark_unusable(fingerprint):
                self.marks_received += 1


class InformedMarkingDecoderPolicy(DecoderPolicy):
    """Decoder half: report missing fingerprints, then drop the packet."""

    name = "informed_marking"

    def __init__(self, max_report_batch: int = 32) -> None:
        super().__init__()
        self.max_report_batch = max_report_batch
        self.reports_sent = 0

    def on_undecodable(self, missing_fingerprints: List[int], pkt: Any,
                       cache: "ByteCache") -> bool:
        batch = missing_fingerprints[: self.max_report_batch]
        if batch:
            self.services.send_control(CONTROL_KIND_MARK, batch)
            self.reports_sent += 1
        return False  # the packet itself is still dropped

    def on_checksum_mismatch(self, suspect_fingerprints: List[int],
                             pkt: Any, cache: "ByteCache") -> bool:
        # Stale references are as poisonous as missing ones: report them
        # so the encoder stops using those cached packets.
        return self.on_undecodable(suspect_fingerprints, pkt, cache)
