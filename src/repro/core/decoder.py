"""The byte-caching decoder.

Performs the reciprocal steps of the encoder (§III-B): parse the
encoding fields, fetch each referenced payload from the local cache,
splice literals and copied regions back together, and then run the same
Cache Update procedure over the reconstructed payload so the decoder's
cache tracks the encoder's.

Failure handling is the crux of the paper: a referenced fingerprint
that is absent (its carrier packet was lost) makes the packet
*undecodable* and it is dropped (§IV-A t3), raising the perceived loss
rate (§VII).  A stale entry — present but pointing at different bytes
because the replacing packet was lost — is caught by the end-to-end
payload checksum and the packet is likewise dropped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, List, Optional

from .cache import ByteCache
from .checksum import verify_payload
from .fingerprint import FingerprintScheme
from .policies.base import DecoderPolicy, PacketMeta
from .wire import (EncodedPayload, MissingFingerprintError, WireFormatError,
                   parse_payload)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .polyhash import AnchorSet


class DecodeStatus(enum.Enum):
    OK_RAW = "ok_raw"                 # pass-through payload
    OK_DECODED = "ok_decoded"         # regions reconstructed successfully
    MISSING = "missing"               # referenced fingerprint not cached
    BUFFERED = "buffered"             # policy held the packet for repair
    CHECKSUM_MISMATCH = "checksum"    # reconstruction produced wrong bytes
    MALFORMED = "malformed"           # wire format damaged (corruption)


@dataclass
class DecodeResult:
    status: DecodeStatus
    payload: Optional[bytes] = None
    missing: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status in (DecodeStatus.OK_RAW, DecodeStatus.OK_DECODED)


@dataclass
class DecoderStats:
    packets: int = 0
    raw: int = 0
    decoded: int = 0
    missing: int = 0
    buffered: int = 0
    checksum_mismatch: int = 0
    history_decodes: int = 0     # saved by one-generation-older entries
    malformed: int = 0
    bytes_in: int = 0
    bytes_out: int = 0

    @property
    def undecodable(self) -> int:
        """Packets lost to cache desynchronisation (not channel loss)."""
        return self.missing + self.checksum_mismatch + self.malformed


class ByteCachingDecoder:
    """Decodes shimmed payloads against a local byte cache."""

    def __init__(self, scheme: FingerprintScheme, cache: ByteCache,
                 policy: Optional[DecoderPolicy] = None) -> None:
        self.scheme = scheme
        self.cache = cache
        self.policy = policy if policy is not None else DecoderPolicy()
        self.stats = DecoderStats()
        #: Optional :class:`repro.metrics.profiling.StageProfiler`.
        self.profiler = None
        #: Optional :class:`repro.verify.oracles.VerificationHarness`;
        #: None (the default) costs one ``is None`` check per drop.
        self.verifier = None
        #: Optional causal span recorder (duck-typed,
        #: :class:`repro.metrics.spans.SpanRecorder`).  When set,
        #: reconstruction emits a ``reconstruct`` stage span under the
        #: gateway's decode span; None costs one check per encoded
        #: packet.
        self.spans: Optional[Any] = None
        self.policy.attach_decoder(self)

    def decode(self, data: bytes, meta: PacketMeta,
               checksum: Optional[int] = None,
               pkt: Optional[Any] = None) -> DecodeResult:
        """Decode one wire payload.

        ``checksum`` is the sender's end-to-end payload checksum (the
        TCP checksum's role); when given, reconstructed bytes are
        verified against it before being accepted.
        """
        self.stats.packets += 1
        self.stats.bytes_in += len(data)

        try:
            parsed = parse_payload(data)
        except WireFormatError:
            self.stats.malformed += 1
            return DecodeResult(DecodeStatus.MALFORMED)

        if isinstance(parsed, bytes):
            payload = parsed
            if checksum is not None and not verify_payload(payload, checksum):
                # Raw payload corrupted on the wire.
                self.stats.checksum_mismatch += 1
                return DecodeResult(DecodeStatus.CHECKSUM_MISMATCH)
            self._accept(payload, meta)
            self.stats.raw += 1
            self.stats.bytes_out += len(payload)
            return DecodeResult(DecodeStatus.OK_RAW, payload)

        missing = self._missing_fingerprints(parsed)
        if missing:
            self.stats.missing += 1
            took_ownership = self.policy.on_undecodable(missing, pkt, self.cache)
            if took_ownership:
                self.stats.buffered += 1
                return DecodeResult(DecodeStatus.BUFFERED, missing=missing)
            if self.verifier is not None:
                self.verifier.on_undecodable(meta, missing)
            return DecodeResult(DecodeStatus.MISSING, missing=missing)

        spans = self.spans
        recon_span = None
        if spans is not None:
            recon_span = spans.begin_stage("reconstruct", "decoder-core",
                                           regions=len(parsed.regions))
        try:
            payload = self._reconstruct(parsed)
        except (WireFormatError, MissingFingerprintError):
            self.stats.malformed += 1
            if spans is not None:
                spans.end_stage(recon_span, outcome="malformed")
            return DecodeResult(DecodeStatus.MALFORMED)
        if spans is not None:
            spans.end_stage(recon_span, bytes_out=len(payload))

        if checksum is not None and not verify_payload(payload, checksum):
            # Stale cache entry: some fingerprint resolved to bytes that
            # differ from what the encoder referenced.  The encoder's
            # view may simply lag ours by one replacement generation
            # (references race cache updates by up to an RTT), so retry
            # against the displaced entries before giving up.
            fallback = self._reconstruct_with_history(parsed, checksum)
            if fallback is not None:
                self.stats.history_decodes += 1
                self._accept(fallback, meta)
                self.stats.decoded += 1
                self.stats.bytes_out += len(fallback)
                return DecodeResult(DecodeStatus.OK_DECODED, fallback)
            self.stats.checksum_mismatch += 1
            suspects = [region.fingerprint for region in parsed.regions]
            took_ownership = self.policy.on_checksum_mismatch(
                suspects, pkt, self.cache)
            if took_ownership:
                self.stats.buffered += 1
                return DecodeResult(DecodeStatus.BUFFERED, missing=suspects)
            if self.verifier is not None:
                self.verifier.on_stale(meta, suspects)
            return DecodeResult(DecodeStatus.CHECKSUM_MISMATCH)

        self._accept(payload, meta)
        self.stats.decoded += 1
        self.stats.bytes_out += len(payload)
        return DecodeResult(DecodeStatus.OK_DECODED, payload)

    def insert_raw_payload(self, payload: bytes, meta: PacketMeta) -> None:
        """Cache a payload that arrived out of band (NACK repairs)."""
        self._accept(payload, meta)

    # -- internal ---------------------------------------------------------

    def _missing_fingerprints(self, parsed: EncodedPayload) -> List[int]:
        missing = []
        for region in parsed.regions:
            if self.cache.lookup(region.fingerprint) is None:
                missing.append(region.fingerprint)
        return missing

    def _reconstruct_with_history(self, parsed: EncodedPayload,
                                  checksum: int) -> Optional[bytes]:
        """Retry reconstruction substituting displaced cache entries.

        Tries every combination of {current, previous} entry per
        distinct referenced fingerprint (bounded to 4 swappable
        fingerprints = 15 extra attempts) and returns the first
        reconstruction matching the end-to-end checksum.
        """
        from .wire import reconstruct

        fingerprints = []
        for region in parsed.regions:
            if region.fingerprint not in fingerprints:
                fingerprints.append(region.fingerprint)
        swappable = [fp for fp in fingerprints
                     if self.cache.lookup_previous(fp) is not None]
        if not swappable or len(swappable) > 4:
            return None

        for mask in range(1, 1 << len(swappable)):
            use_previous = {fp for index, fp in enumerate(swappable)
                            if mask >> index & 1}

            def resolve(fingerprint: int) -> Optional[bytes]:
                if fingerprint in use_previous:
                    hit = self.cache.lookup_previous(fingerprint)
                else:
                    hit = self.cache.lookup(fingerprint)
                return hit[1] if hit is not None else None

            try:
                payload = reconstruct(parsed, resolve)
            except (WireFormatError, MissingFingerprintError):
                continue
            if verify_payload(payload, checksum):
                return payload
        return None

    def _reconstruct(self, parsed: EncodedPayload) -> bytes:
        from .wire import reconstruct

        # Zero-copy resolve: regions are spliced straight out of the
        # packet store's buffers (memoryviews), no per-region copy.
        return reconstruct(parsed, self.cache.lookup_view)

    def _accept(self, payload: bytes, meta: PacketMeta) -> None:
        """Mirror the encoder's Cache Update procedure."""
        profiler = self.profiler
        if profiler is not None:
            started = perf_counter()
            anchors = self.scheme.anchors(payload)
            profiler.add("fingerprint", perf_counter() - started)
        else:
            anchors = self.scheme.anchors(payload)
        if not self.policy.should_cache_now(meta):
            self.policy.defer_cache(payload, anchors, meta)
            return
        if profiler is not None:
            started = perf_counter()
            self.insert_anchors(payload, anchors, meta)
            profiler.add("cache_ops", perf_counter() - started)
        else:
            self.insert_anchors(payload, anchors, meta)

    def insert_anchors(self, payload: bytes, anchors: "AnchorSet",
                       meta: PacketMeta) -> None:
        """Commit one payload (and its anchors) into the decoder cache."""
        self.cache.insert_packet(
            payload, anchors,
            tcp_seq=meta.tcp_seq,
            flow=meta.flow,
            packet_counter=meta.counter,
            external_id=meta.packet_id,
        )
