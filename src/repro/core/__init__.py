"""Byte caching core: fingerprints, caches, encoder/decoder, policies."""

from .cache import ByteCache, CacheEntry, FingerprintTable, PacketStore
from .decoder import ByteCachingDecoder, DecodeResult, DecodeStatus, DecoderStats
from .encoder import ByteCachingEncoder, EncodeResult, EncoderStats
from .fingerprint import (DEFAULT_WINDOW, DEFAULT_ZERO_BITS, FingerprintScheme,
                          Fingerprinter)
from .polyhash import AnchorSet, PolyFingerprinter
from .rabin import RabinFingerprinter
from .region import Region, expand_match
from .shardcache import CacheShard, ShardedByteCache, ShardEntry, shard_of
from .wire import (FIELD_SIZE, MIN_REGION_LENGTH, MissingFingerprintError,
                   WireFormatError, encode_payload, encoded_size, parse_payload,
                   reconstruct, wrap_raw)

__all__ = [
    "ByteCache",
    "CacheEntry",
    "FingerprintTable",
    "PacketStore",
    "ByteCachingDecoder",
    "DecodeResult",
    "DecodeStatus",
    "DecoderStats",
    "ByteCachingEncoder",
    "EncodeResult",
    "EncoderStats",
    "DEFAULT_WINDOW",
    "DEFAULT_ZERO_BITS",
    "FingerprintScheme",
    "Fingerprinter",
    "AnchorSet",
    "PolyFingerprinter",
    "RabinFingerprinter",
    "Region",
    "expand_match",
    "CacheShard",
    "ShardedByteCache",
    "ShardEntry",
    "shard_of",
    "FIELD_SIZE",
    "MIN_REGION_LENGTH",
    "MissingFingerprintError",
    "WireFormatError",
    "encode_payload",
    "encoded_size",
    "parse_payload",
    "reconstruct",
    "wrap_raw",
]
