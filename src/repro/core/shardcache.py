"""Sharded, memory-bounded byte cache for population serving.

A single :class:`~repro.core.cache.ByteCache` serves one transfer well,
but a gateway in front of thousands of subscribers holds *one* cache
for all of them, and a single dict + FIFO store becomes both a memory
liability and (eventually) a contention point.  This module shards the
cache by fingerprint:

* **Fingerprint routing** — every fingerprint is owned by exactly one
  of ``n_shards`` shards (``shard_of``: a Fibonacci-mixed hash of the
  fingerprint, deliberately *not* the low bits, which anchor selection
  zeroes out).
* **Payload homes** — a cached payload lives in exactly one shard's
  :class:`~repro.core.cache.PacketStore` (its *home*, the shard of its
  first anchor); table entries in other shards reference it by a
  globally unique store id plus the home shard index.  Cross-shard
  entries left dangling by the home's eviction are invalidated lazily
  on lookup, exactly like the unsharded cache's dangling entries.
* **Per-shard byte budgets** — the total budget splits evenly across
  shards, each enforcing its own bound (LRU by default here: a shared
  cache keeps hot content alive instead of sliding a window).
* **Probabilistic admission** — an optional content-keyed coin
  (``admission < 1.0``) that skips caching a payload entirely.  Keyed
  on a CRC of the payload bytes, never on call order, so an encoder
  and decoder make identical decisions regardless of loss/reordering
  between them.

In the no-eviction regime the sharded cache is observationally
equivalent to one big :class:`ByteCache` (the property tests hold
``insert_packet``/``lookup``/``lookup_previous``/``mark_unusable`` to
parity against that oracle for arbitrary interleavings); under memory
pressure the per-shard budgets differ from the global FIFO only in
*which* payloads are evicted, never in safety — a dangling reference is
a decode miss, the same failure TCP already repairs.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .cache import CacheEntry, FingerprintTable, PacketStore, TableEntry

#: Fibonacci multiplier (2^64 / phi) used to mix fingerprints before
#: shard routing — anchor selection zeroes the low ``zero_bits`` of
#: every selected fingerprint, so raw ``fp % n`` would collapse small
#: shard counts onto shard 0.
_MIX = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def shard_of(fingerprint: int, n_shards: int) -> int:
    """Owning shard index of a fingerprint (deterministic)."""
    return (((fingerprint * _MIX) & _MASK64) >> 17) % n_shards


class ShardEntry(CacheEntry):
    """A :class:`CacheEntry` that also records its payload's home shard.

    Carrying the home index inside the entry keeps lookup a two-dict
    walk (table shard -> home store) with no auxiliary owner map.
    """

    __slots__ = ("home",)

    def __init__(self, fingerprint: int, store_id: int, offset: int,
                 home: int,
                 tcp_seq: Optional[int] = None,
                 flow: Optional[tuple] = None,
                 packet_counter: int = 0,
                 usable: bool = True) -> None:
        super().__init__(fingerprint, store_id, offset, tcp_seq, flow,
                         packet_counter, usable)
        self.home = home


class CacheShard:
    """One shard: a byte-budgeted payload store plus a fingerprint table."""

    __slots__ = ("index", "store", "table", "previous")

    def __init__(self, index: int, byte_budget: int,
                 max_packets: Optional[int], eviction: str) -> None:
        self.index = index
        self.store = PacketStore(byte_budget, max_packets, eviction)
        self.table = FingerprintTable()
        # One generation of displaced entries, as in ByteCache.
        self.previous: Dict[int, ShardEntry] = {}


class _ShardedStoreView:
    """Aggregate, read-only ``store`` facade over all shards.

    Presents the attribute surface telemetry and the verify oracles
    read from ``ByteCache.store``: ``len``, ``bytes_used``,
    ``evictions`` and the side-effect-free ``_data.get``.
    """

    __slots__ = ("_shards",)

    def __init__(self, shards: List[CacheShard]) -> None:
        self._shards = shards

    def __len__(self) -> int:
        return sum(len(shard.store) for shard in self._shards)

    @property
    def bytes_used(self) -> int:
        return sum(shard.store.bytes_used for shard in self._shards)

    @property
    def evictions(self) -> int:
        return sum(shard.store.evictions for shard in self._shards)

    @property
    def byte_budget(self) -> int:
        return sum(shard.store.byte_budget for shard in self._shards)

    @property
    def _data(self) -> "_MergedPayloads":
        return _MergedPayloads(self._shards)

    def ids(self) -> Iterator[int]:
        for shard in self._shards:
            yield from shard.store.ids()


class _MergedPayloads:
    """``store._data``-shaped view: ``get`` without LRU side effects."""

    __slots__ = ("_shards",)

    def __init__(self, shards: List[CacheShard]) -> None:
        self._shards = shards

    def get(self, store_id: int) -> Optional[bytes]:
        for shard in self._shards:
            payload = shard.store._data.get(store_id)
            if payload is not None:
                return payload
        return None


class _ShardedTableView:
    """Aggregate ``table`` facade (``get``/``entries``/counters)."""

    __slots__ = ("_parent",)

    def __init__(self, parent: "ShardedByteCache") -> None:
        self._parent = parent

    def __len__(self) -> int:
        return sum(len(shard.table) for shard in self._parent.shards)

    def get(self, fingerprint: int) -> Optional[TableEntry]:
        parent = self._parent
        shard = parent.shards[shard_of(fingerprint, parent.n_shards)]
        return shard.table.get(fingerprint)

    def remove(self, fingerprint: int) -> None:
        parent = self._parent
        shard = parent.shards[shard_of(fingerprint, parent.n_shards)]
        shard.table.remove(fingerprint)

    def clear(self) -> None:
        for shard in self._parent.shards:
            shard.table.clear()

    def entries(self) -> Iterator[TableEntry]:
        for shard in self._parent.shards:
            yield from shard.table.entries()

    @property
    def inserts(self) -> int:
        return sum(shard.table.inserts for shard in self._parent.shards)

    @property
    def replacements(self) -> int:
        return sum(shard.table.replacements for shard in self._parent.shards)


class ShardedByteCache:
    """A drop-in :class:`ByteCache` replacement sharded by fingerprint.

    Exposes the same surface the encoder/decoder cores, gateways,
    policies, resilience layer, telemetry and verify oracles consume:
    ``insert_packet`` / ``lookup`` / ``lookup_view`` /
    ``lookup_previous`` / ``mark_unusable`` / ``flush`` /
    ``bump_epoch`` / ``set_byte_budget`` / ``evict_fraction``, the
    ``store`` and ``table`` views, and ``epoch``/``flushes``.  The
    ``_ring`` attribute is ``None`` so the encoder's batched ring fast
    path falls back to the generic (table-agnostic) loop.
    """

    def __init__(self, byte_budget: int = 16 * 1024 * 1024,
                 n_shards: int = 8,
                 max_packets: Optional[int] = None,
                 eviction: str = "lru",
                 admission: float = 1.0) -> None:
        if byte_budget <= 0:
            raise ValueError("byte_budget must be positive")
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if not 0.0 < admission <= 1.0:
            raise ValueError(f"admission must be in (0, 1], got {admission}")
        self.byte_budget = byte_budget
        self.n_shards = n_shards
        self.admission = admission
        per_shard = max(1, byte_budget // n_shards)
        per_shard_packets = (None if max_packets is None
                             else max(1, -(-max_packets // n_shards)))
        self.shards: List[CacheShard] = [
            CacheShard(index, per_shard, per_shard_packets, eviction)
            for index in range(n_shards)]
        # Globally unique store ids: every shard's PacketStore draws
        # from one shared counter, so an id names one payload cache-wide
        # (external-id maps and the verify oracles depend on that).
        shared_ids = self.shards[0].store._ids
        for shard in self.shards[1:]:
            shard.store._ids = shared_ids
        self.store = _ShardedStoreView(self.shards)
        self.table = _ShardedTableView(self)
        self.table_kind = "sharded-dict"
        #: No ring table: consumers testing `cache._ring is None` take
        #: their generic path (see ByteCache.table_kind "dict").
        self._ring = None
        self.epoch = 0
        self.flushes = 0
        #: Payloads the admission coin declined to cache.
        self.admission_rejected = 0
        self._external_ids: Dict[int, int] = {}
        self._unusable_store_ids: Set[int] = set()

    # -- admission ---------------------------------------------------------

    def _admit(self, payload: bytes) -> bool:
        # Content-keyed coin: both gateways flip identically for the
        # same bytes, independent of arrival order or loss between
        # them.  (A sequence-keyed coin would silently desynchronise
        # the caches on the first dropped packet.)
        threshold = int(self.admission * 0xFFFFFFFF)
        return (zlib.crc32(payload) & 0xFFFFFFFF) <= threshold

    # -- the ByteCache surface ---------------------------------------------

    def insert_packet(self, payload: bytes,
                      anchors: list,
                      tcp_seq: Optional[int] = None,
                      flow: Optional[tuple] = None,
                      packet_counter: int = 0,
                      external_id: Optional[int] = None) -> int:
        """Cache ``payload`` in its home shard; route anchors to theirs.

        Returns the payload's (globally unique) store id, or ``0`` when
        the admission coin declined the payload.
        """
        pairs = anchors.pairs() if hasattr(anchors, "pairs") else anchors
        if not hasattr(pairs, "__len__"):
            pairs = list(pairs)
        if self.admission < 1.0 and not self._admit(payload):
            self.admission_rejected += 1
            return 0
        n_shards = self.n_shards
        if pairs:
            home = shard_of(pairs[0][1], n_shards)
        else:
            home = (zlib.crc32(payload) & 0xFFFFFFFF) % n_shards
        shards = self.shards
        store_id = shards[home].store.add(payload)
        if external_id is not None:
            self._external_ids[store_id] = external_id
            if len(self._external_ids) > 4 * len(self.store) + 64:
                self._prune()
        entry_cls = ShardEntry
        for offset, fingerprint in pairs:
            shard = shards[shard_of(fingerprint, n_shards)]
            table = shard.table
            entries = table._table
            displaced = entries.get(fingerprint)
            if displaced is not None:
                table.replacements += 1
                if displaced.store_id != store_id:
                    shard.previous[fingerprint] = displaced
            table.inserts += 1
            entries[fingerprint] = entry_cls(fingerprint, store_id, offset,
                                             home, tcp_seq, flow,
                                             packet_counter)
        return store_id

    def lookup(self, fingerprint: int) -> Optional[Tuple[TableEntry, bytes]]:
        """Return (entry, cached payload) or None; lazy invalidation."""
        shard = self.shards[shard_of(fingerprint, self.n_shards)]
        entry = shard.table._table.get(fingerprint)
        if entry is None or not entry.usable:
            return None
        store_id = entry.store_id
        if store_id in self._unusable_store_ids:
            return None
        payload = self.shards[entry.home].store.get(store_id)
        if payload is None:
            shard.table.remove(fingerprint)
            return None
        return entry, payload

    def lookup_view(self, fingerprint: int) -> Optional[memoryview]:
        """Zero-copy variant of :meth:`lookup` for region reads."""
        hit = self.lookup(fingerprint)
        if hit is None:
            return None
        return memoryview(hit[1])

    def lookup_previous(self, fingerprint: int
                        ) -> Optional[Tuple[TableEntry, bytes]]:
        """The displaced (one-generation-older) entry, as in ByteCache."""
        shard = self.shards[shard_of(fingerprint, self.n_shards)]
        entry = shard.previous.get(fingerprint)
        if entry is None or not entry.usable:
            return None
        if entry.store_id in self._unusable_store_ids:
            return None
        payload = self.shards[entry.home].store.get(entry.store_id)
        if payload is None:
            shard.previous.pop(fingerprint, None)
            return None
        return entry, payload

    def external_id_for(self, store_id: int) -> Optional[int]:
        return self._external_ids.get(store_id)

    def mark_unusable(self, fingerprint: int) -> bool:
        """Informed marking, with the whole-payload semantics of
        :meth:`ByteCache.mark_unusable` (every fingerprint resolving to
        the same payload is disabled via the store-id set)."""
        shard = self.shards[shard_of(fingerprint, self.n_shards)]
        entry = shard.table.get(fingerprint)
        if entry is None:
            return False
        entry.usable = False
        self._unusable_store_ids.add(entry.store_id)
        return True

    def flush(self) -> None:
        """Drop everything in every shard (one cache, one flush)."""
        for shard in self.shards:
            shard.store.clear()
            shard.table.clear()
            shard.previous.clear()
        self._external_ids.clear()
        self._unusable_store_ids.clear()
        self.flushes += 1

    def bump_epoch(self) -> int:
        self.epoch += 1
        return self.epoch

    def set_byte_budget(self, byte_budget: int) -> int:
        """Re-split the budget across shards; returns evictions forced."""
        if byte_budget <= 0:
            raise ValueError("byte_budget must be positive")
        self.byte_budget = byte_budget
        per_shard = max(1, byte_budget // self.n_shards)
        evicted = 0
        for shard in self.shards:
            evicted += shard.store.set_byte_budget(per_shard)
        return evicted

    def evict_fraction(self, fraction: float) -> int:
        """Evict the oldest ``fraction`` of each shard's payloads."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        evicted = 0
        for shard in self.shards:
            evicted += shard.store.evict_oldest(
                int(len(shard.store) * fraction))
        return evicted

    # -- maintenance / introspection ---------------------------------------

    def _prune(self) -> None:
        live = set(self.store.ids())
        self._external_ids = {sid: ext
                              for sid, ext in self._external_ids.items()
                              if sid in live}
        self._unusable_store_ids &= live
        for shard in self.shards:
            shard.previous = {fp: entry
                              for fp, entry in shard.previous.items()
                              if entry.store_id in live}

    def __len__(self) -> int:
        return len(self.table)

    def shard_occupancy(self) -> List[Dict[str, int]]:
        """Per-shard occupancy/eviction snapshot (telemetry + reports)."""
        rows: List[Dict[str, int]] = []
        for shard in self.shards:
            rows.append({
                "shard": shard.index,
                "payloads": len(shard.store),
                "bytes": shard.store.bytes_used,
                "byte_budget": shard.store.byte_budget,
                "entries": len(shard.table),
                "evictions": shard.store.evictions,
            })
        return rows

    def check_invariants(self) -> List[str]:
        """Machine-checked shard invariants; returns violation strings.

        The serving oracle calls this during a run: per-shard bytes
        within budget (and consistent with the stored payloads), every
        fingerprint resident in exactly the shard that owns it, and the
        global entry count equal to the sum over shards.
        """
        problems: List[str] = []
        seen_fps: Set[int] = set()
        total_entries = 0
        for shard in self.shards:
            store = shard.store
            if store.bytes_used > store.byte_budget:
                problems.append(
                    f"shard {shard.index}: {store.bytes_used} bytes "
                    f"exceeds budget {store.byte_budget}")
            actual = sum(len(payload) for payload in store._data.values())
            if actual != store.bytes_used:
                problems.append(
                    f"shard {shard.index}: accounted {store.bytes_used} "
                    f"bytes but stores {actual}")
            total_entries += len(shard.table)
            for entry in shard.table.entries():
                fp = entry.fingerprint
                owner = shard_of(fp, self.n_shards)
                if owner != shard.index:
                    problems.append(
                        f"fingerprint {fp} resident in shard "
                        f"{shard.index} but owned by shard {owner}")
                if fp in seen_fps:
                    problems.append(
                        f"fingerprint {fp} resident in two shards")
                seen_fps.add(fp)
        if total_entries != len(self.table):
            problems.append(
                f"global entry count {len(self.table)} != "
                f"sum of shards {total_entries}")
        return problems
