"""Match verification and boundary expansion.

When an anchor fingerprint of the incoming packet hits the cache, the
encoder byte-compares the two windows (two different strings can share
a fingerprint) and then grows the match left and right to find the full
repeated region (§III-A: "determine the boundaries of the repeated
content").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Region:
    """A repeated region to be replaced by an encoding field.

    ``offset_new``/``offset_stored`` are the region start offsets in the
    incoming and cached payloads; ``length`` is the match length;
    ``fingerprint`` identifies the cached payload at the decoder.
    """

    fingerprint: int
    offset_new: int
    offset_stored: int
    length: int

    @property
    def end_new(self) -> int:
        return self.offset_new + self.length

    @property
    def end_stored(self) -> int:
        return self.offset_stored + self.length


def common_prefix_length(a: bytes, a_start: int, b: bytes, b_start: int,
                         limit: int) -> int:
    """Length of the common run of ``a[a_start:]`` and ``b[b_start:]``.

    Compares in chunks so long matches cost O(n/chunk) slice compares
    rather than a per-byte Python loop.
    """
    n = 0
    chunk = 256
    while n < limit:
        step = min(chunk, limit - n)
        if a[a_start + n: a_start + n + step] == b[b_start + n: b_start + n + step]:
            n += step
            continue
        # Mismatch inside this chunk: locate it byte by byte.
        for i in range(step):
            if a[a_start + n + i] != b[b_start + n + i]:
                return n + i
        return n + step  # unreachable, defensive
    return n


def common_suffix_length(a: bytes, a_end: int, b: bytes, b_end: int,
                         limit: int) -> int:
    """Length of the common run ending at ``a[:a_end]`` / ``b[:b_end]``."""
    n = 0
    chunk = 256
    while n < limit:
        step = min(chunk, limit - n)
        if a[a_end - n - step: a_end - n] == b[b_end - n - step: b_end - n]:
            n += step
            continue
        for i in range(1, step + 1):
            if a[a_end - n - i] != b[b_end - n - i]:
                return n + i - 1
        return n + step  # unreachable, defensive
    return n


def expand_match(new: bytes, new_anchor: int, stored: bytes, stored_anchor: int,
                 window: int, left_limit: int = 0) -> "Region | None":
    """Verify and expand a candidate match around an anchor window.

    Returns the maximal :class:`Region` (with a placeholder fingerprint
    of 0 — the caller fills it in) or ``None`` when the anchor windows
    do not actually match (a fingerprint collision).

    ``left_limit`` prevents the region from growing into bytes of the
    incoming packet that an earlier region already consumed.
    """
    if new_anchor < left_limit:
        return None
    if new_anchor + window > len(new) or stored_anchor + window > len(stored):
        return None
    if new[new_anchor: new_anchor + window] != stored[stored_anchor: stored_anchor + window]:
        return None

    left_room = min(new_anchor - left_limit, stored_anchor)
    left = common_suffix_length(new, new_anchor, stored, stored_anchor, left_room)

    right_room = min(len(new) - (new_anchor + window),
                     len(stored) - (stored_anchor + window))
    right = common_prefix_length(new, new_anchor + window,
                                 stored, stored_anchor + window, right_room)

    return Region(
        fingerprint=0,
        offset_new=new_anchor - left,
        offset_stored=stored_anchor - left,
        length=left + window + right,
    )
