"""Match verification and boundary expansion.

When an anchor fingerprint of the incoming packet hits the cache, the
encoder byte-compares the two windows (two different strings can share
a fingerprint) and then grows the match left and right to find the full
repeated region (§III-A: "determine the boundaries of the repeated
content").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Region:
    """A repeated region to be replaced by an encoding field.

    ``offset_new``/``offset_stored`` are the region start offsets in the
    incoming and cached payloads; ``length`` is the match length;
    ``fingerprint`` identifies the cached payload at the decoder.
    """

    fingerprint: int
    offset_new: int
    offset_stored: int
    length: int

    @property
    def end_new(self) -> int:
        return self.offset_new + self.length

    @property
    def end_stored(self) -> int:
        return self.offset_stored + self.length


def _first_diff(a: bytes, a_start: int, b: bytes, b_start: int,
                length: int) -> int:
    """Index of the first differing byte in two ranges known to differ.

    Binary halving: O(log n) slice compares instead of a per-byte loop.
    """
    offset = 0
    while length > 1:
        half = length >> 1
        if (a[a_start + offset: a_start + offset + half]
                == b[b_start + offset: b_start + offset + half]):
            offset += half
            length -= half
        else:
            length = half
    return offset


def common_prefix_length(a: bytes, a_start: int, b: bytes, b_start: int,
                         limit: int) -> int:
    """Length of the common run of ``a[a_start:]`` and ``b[b_start:]``.

    One slice compare settles the (common) fully-matching case; a
    mismatch is then located by binary halving — both avoid a per-byte
    Python loop.
    """
    if limit <= 0:
        return 0
    if a[a_start: a_start + limit] == b[b_start: b_start + limit]:
        return limit
    return _first_diff(a, a_start, b, b_start, limit)


def common_suffix_length(a: bytes, a_end: int, b: bytes, b_end: int,
                         limit: int) -> int:
    """Length of the common run ending at ``a[:a_end]`` / ``b[:b_end]``."""
    if limit <= 0:
        return 0
    if a[a_end - limit: a_end] == b[b_end - limit: b_end]:
        return limit
    # Mirror of _first_diff, walking leftwards from the range ends.
    offset = 0
    length = limit
    while length > 1:
        half = length >> 1
        if (a[a_end - offset - half: a_end - offset]
                == b[b_end - offset - half: b_end - offset]):
            offset += half
            length -= half
        else:
            length = half
    return offset


def expand_match(new: bytes, new_anchor: int, stored: bytes, stored_anchor: int,
                 window: int, left_limit: int = 0) -> "Region | None":
    """Verify and expand a candidate match around an anchor window.

    Returns the maximal :class:`Region` (with a placeholder fingerprint
    of 0 — the caller fills it in) or ``None`` when the anchor windows
    do not actually match (a fingerprint collision).

    ``left_limit`` prevents the region from growing into bytes of the
    incoming packet that an earlier region already consumed.
    """
    if new_anchor < left_limit:
        return None
    if new_anchor + window > len(new) or stored_anchor + window > len(stored):
        return None
    if new[new_anchor: new_anchor + window] != stored[stored_anchor: stored_anchor + window]:
        return None

    left_room = min(new_anchor - left_limit, stored_anchor)
    left = common_suffix_length(new, new_anchor, stored, stored_anchor, left_room)

    right_room = min(len(new) - (new_anchor + window),
                     len(stored) - (stored_anchor + window))
    right = common_prefix_length(new, new_anchor + window,
                                 stored, stored_anchor + window, right_room)

    return Region(
        fingerprint=0,
        offset_new=new_anchor - left,
        offset_stored=stored_anchor - left,
        length=left + window + right,
    )
