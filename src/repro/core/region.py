"""Match verification and boundary expansion.

When an anchor fingerprint of the incoming packet hits the cache, the
encoder byte-compares the two windows (two different strings can share
a fingerprint) and then grows the match left and right to find the full
repeated region (§III-A: "determine the boundaries of the repeated
content").
"""

from __future__ import annotations

from typing import NamedTuple


class Region(NamedTuple):
    """A repeated region to be replaced by an encoding field.

    ``offset_new``/``offset_stored`` are the region start offsets in the
    incoming and cached payloads; ``length`` is the match length;
    ``fingerprint`` identifies the cached payload at the decoder.

    A ``NamedTuple`` rather than a frozen dataclass: same immutability
    and equality, but tuple construction skips the per-field
    ``object.__setattr__`` a frozen dataclass pays — the encoder builds
    one per accepted match in its hot loop.
    """

    fingerprint: int
    offset_new: int
    offset_stored: int
    length: int

    @property
    def end_new(self) -> int:
        return self.offset_new + self.length

    @property
    def end_stored(self) -> int:
        return self.offset_stored + self.length


def _first_diff(a: bytes, a_start: int, b: bytes, b_start: int,
                length: int) -> int:
    """Index of the first differing byte in two ranges known to differ.

    Both ranges are read as big-endian integers and XORed: the number
    of leading zero *bytes* of the XOR is exactly the common prefix
    length.  ``int.from_bytes``, ``^`` and ``bit_length`` all run at C
    speed, so this is one pass over the data with no Python loop — it
    replaced an O(log n) slice-compare halving that cost ~10 slice
    allocations per call.
    """
    x = (int.from_bytes(a[a_start: a_start + length], "big")
         ^ int.from_bytes(b[b_start: b_start + length], "big"))
    return length - ((x.bit_length() + 7) >> 3)


def common_prefix_length(a: bytes, a_start: int, b: bytes, b_start: int,
                         limit: int) -> int:
    """Length of the common run of ``a[a_start:]`` and ``b[b_start:]``.

    One slice compare settles the (common) fully-matching case; a
    mismatch is then located by binary halving — both avoid a per-byte
    Python loop.
    """
    if limit <= 0:
        return 0
    if a[a_start: a_start + limit] == b[b_start: b_start + limit]:
        return limit
    return _first_diff(a, a_start, b, b_start, limit)


def common_suffix_length(a: bytes, a_end: int, b: bytes, b_end: int,
                         limit: int) -> int:
    """Length of the common run ending at ``a[:a_end]`` / ``b[:b_end]``."""
    if limit <= 0:
        return 0
    if a[a_end - limit: a_end] == b[b_end - limit: b_end]:
        return limit
    # Mirror of _first_diff: the number of trailing zero bytes of the
    # big-endian XOR is the common suffix length.
    x = (int.from_bytes(a[a_end - limit: a_end], "big")
         ^ int.from_bytes(b[b_end - limit: b_end], "big"))
    return ((x & -x).bit_length() - 1) >> 3


def expand_bounds(new: bytes, new_anchor: int, stored: bytes,
                  stored_anchor: int, window: int,
                  left_limit: int = 0) -> "tuple[int, int, int] | None":
    """Verify and expand a candidate match around an anchor window.

    Returns ``(offset_new, offset_stored, length)`` of the maximal
    match, or ``None`` when the anchor windows do not actually match (a
    fingerprint collision).  The encoder hot loop uses this tuple form
    directly — a frozen :class:`Region` costs a per-field
    ``object.__setattr__`` to construct, and the loop only builds one
    once a match passes the length and policy gates.

    ``left_limit`` prevents the region from growing into bytes of the
    incoming packet that an earlier region already consumed.
    """
    if new_anchor < left_limit:
        return None
    new_len = len(new)
    stored_len = len(stored)
    if new_anchor + window > new_len or stored_anchor + window > stored_len:
        return None
    if new[new_anchor: new_anchor + window] != stored[stored_anchor: stored_anchor + window]:
        return None

    # Each direction: one slice compare (memcmp) settles the common
    # fully-matching case; only a mismatch pays for the big-endian XOR
    # that locates the exact divergence point (see _first_diff).
    left_room = min(new_anchor - left_limit, stored_anchor)
    if left_room > 0:
        a = new[new_anchor - left_room: new_anchor]
        b = stored[stored_anchor - left_room: stored_anchor]
        if a == b:
            left = left_room
        else:
            x = int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
            left = ((x & -x).bit_length() - 1) >> 3
    else:
        left = 0

    right_room = min(new_len - new_anchor, stored_len - stored_anchor) - window
    if right_room > 0:
        a0 = new_anchor + window
        b0 = stored_anchor + window
        a = new[a0: a0 + right_room]
        b = stored[b0: b0 + right_room]
        if a == b:
            right = right_room
        else:
            x = int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
            right = right_room - ((x.bit_length() + 7) >> 3)
    else:
        right = 0

    return new_anchor - left, stored_anchor - left, left + window + right


def expand_match(new: bytes, new_anchor: int, stored: bytes, stored_anchor: int,
                 window: int, left_limit: int = 0) -> "Region | None":
    """:func:`expand_bounds` packaged as a :class:`Region`.

    The returned region carries a placeholder fingerprint of 0 — the
    caller fills it in.
    """
    bounds = expand_bounds(new, new_anchor, stored, stored_anchor,
                           window, left_limit)
    if bounds is None:
        return None
    offset_new, offset_stored, length = bounds
    return Region(
        fingerprint=0,
        offset_new=offset_new,
        offset_stored=offset_stored,
        length=length,
    )
