"""Contiguous ring-buffer fingerprint table (batched fast path).

The dict-of-:class:`~repro.core.cache.CacheEntry` table costs one
object allocation and two dict probes per anchor per cached packet —
millions per sweep.  This module stores entries in parallel numpy
arrays instead and addresses them by a monotone *entry id*:

* ``_fps`` / ``_offsets`` / ``_pkt`` — per-entry arrays, indexed by
  ``id % capacity`` (capacity is a power of two, so the modulo is a
  mask).  ``_pkt`` points into per-insert *packet records* (store id,
  tcp seq, flow, counter are identical for every anchor of one cached
  packet, so they are stored once per packet, not once per anchor).
* ``_index`` — fingerprint -> newest entry id.  CPython dicts are
  open-addressed hash tables with C-speed bulk operations
  (``update(zip(...))``), which measured faster than a hand-rolled
  numpy open-addressed probe for this scalar-probe mix.
* a *candidate bitmap* — an epoch-stamped ``uint8`` array over a
  Fibonacci hash of the fingerprint space.  :meth:`candidates` answers
  "which of these anchors could be cached?" for a whole packet in a
  few vectorised ops, so the encoder's region loop only probes anchors
  that can hit (false positives are filtered by the index; false
  negatives cannot happen because bits are only invalidated by an
  epoch bump).

Ids are valid while ``id >= _floor``.  In the default *autogrow* mode
the ring never invalidates a live entry: when full it either compacts
(keeping, per fingerprint, the newest entry plus the newest older
entry referencing a different stored packet — exactly the entries
reachable through ``get`` and ``previous_entry``) or doubles capacity.
With ``autogrow=False`` the ring is a fixed-size window: wrapping
evicts the oldest entries, invalidating them even if still current
(the classic ring-buffer trade-off, exercised by the edge-case tests).

Newest-wins, insert/replacement counting, ``len`` and lazy removal all
match :class:`~repro.core.cache.FingerprintTable` exactly — the
encoder's wire output is byte-identical whichever table backs the
cache (enforced by the differential runner and bench_hotpath's legacy
oracle).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

_U64 = np.uint64
#: Fibonacci multiplier (golden-ratio reciprocal mod 2**64) for the
#: candidate bitmap hash: one multiply + shift spreads fingerprints
#: uniformly over the bitmap slots.
_FIB = np.uint64(0x9E3779B97F4A7C15)

_EMPTY_BOOL = np.zeros(0, dtype=bool)
_EMPTY_I64 = np.empty(0, dtype=np.int64)


class RingEntry:
    """View of one ring-table entry (CacheEntry-compatible).

    Allocated only for fingerprints that *hit* — the miss path never
    materialises an entry.  Attribute reads go straight to the table's
    arrays; ``usable`` writes through (informed marking).
    """

    __slots__ = ("_table", "_id", "_slot")

    def __init__(self, table: "RingFingerprintTable", entry_id: int) -> None:
        self._table = table
        self._id = entry_id
        self._slot = entry_id & table._mask

    @property
    def fingerprint(self) -> int:
        return int(self._table._fps[self._slot])

    @property
    def offset(self) -> int:
        return int(self._table._offsets[self._slot])

    @property
    def store_id(self) -> int:
        return self._table._rec_store[self._table._pkt[self._slot]]

    @property
    def tcp_seq(self) -> Optional[int]:
        return self._table._rec_seq[self._table._pkt[self._slot]]

    @property
    def flow(self) -> Optional[tuple]:
        return self._table._rec_flow[self._table._pkt[self._slot]]

    @property
    def packet_counter(self) -> int:
        return self._table._rec_counter[self._table._pkt[self._slot]]

    @property
    def usable(self) -> bool:
        return self._id not in self._table._unusable_ids

    @usable.setter
    def usable(self, value: bool) -> None:
        if value:
            self._table._unusable_ids.discard(self._id)
        else:
            self._table._unusable_ids.add(self._id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RingEntry(fingerprint={self.fingerprint}, "
                f"store_id={self.store_id}, offset={self.offset}, "
                f"tcp_seq={self.tcp_seq}, flow={self.flow}, "
                f"packet_counter={self.packet_counter}, "
                f"usable={self.usable})")


class RingFingerprintTable:
    """fingerprint -> newest entry, backed by ring-buffer numpy arrays."""

    def __init__(self, capacity: int = 8192, *, autogrow: bool = True,
                 bitmap_bits: int = 18) -> None:
        if capacity < 2 or capacity & (capacity - 1):
            raise ValueError(f"capacity must be a power of two >= 2, "
                             f"got {capacity}")
        if not 8 <= bitmap_bits <= 24:
            raise ValueError(f"bitmap_bits must be in [8, 24], "
                             f"got {bitmap_bits}")
        self._capacity = capacity
        self._mask = capacity - 1
        self.autogrow = autogrow
        self._fps = np.zeros(capacity, dtype=np.uint64)
        self._offsets = np.zeros(capacity, dtype=np.int64)
        self._pkt = np.zeros(capacity, dtype=np.int64)
        # Per-insert packet records (shared by every anchor of a packet).
        self._rec_store: List[int] = []
        self._rec_seq: List[Optional[int]] = []
        self._rec_flow: List[Optional[tuple]] = []
        self._rec_counter: List[int] = []
        self._index: Dict[int, int] = {}
        self._next = 0          # next entry id to assign
        self._floor = 0         # smallest valid entry id
        self._unusable_ids: Set[int] = set()
        self.inserts = 0
        self.replacements = 0
        self.evictions = 0      # entries invalidated by fixed-mode wrap
        self.compactions = 0
        self.grows = 0
        # Candidate bitmap (epoch-stamped; bump == clear-all).
        self._bm_bits = bitmap_bits
        self._bm = np.zeros(1 << bitmap_bits, dtype=np.uint8)
        self._bm_shift = _U64(64 - bitmap_bits)
        self._bm_epoch = 1
        # Grow-only scratch for the per-batch slot/hash arithmetic
        # (avoids two small allocations per cached packet).  When the
        # scratch holds the bitmap hashes of a just-probed fingerprint
        # array, ``_scratch_tag`` is that array object: the encoder
        # probes a packet's anchors and then inserts the same array, so
        # the insert can reuse the hashes instead of recomputing them.
        self._scratch_u64 = np.empty(256, dtype=np.uint64)
        self._scratch_tag: Optional[np.ndarray] = None

    # -- size and capacity -------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    @property
    def capacity(self) -> int:
        return self._capacity

    def put(self, entry: object) -> None:
        """Insert one CacheEntry-shaped object (compatibility path)."""
        offsets = np.array([entry.offset], dtype=np.int64)  # type: ignore[attr-defined]
        fps = np.array([entry.fingerprint], dtype=np.uint64)  # type: ignore[attr-defined]
        self.insert_batch(offsets, fps,
                          entry.store_id,      # type: ignore[attr-defined]
                          entry.tcp_seq,       # type: ignore[attr-defined]
                          entry.flow,          # type: ignore[attr-defined]
                          entry.packet_counter)  # type: ignore[attr-defined]
        if not getattr(entry, "usable", True):
            self._unusable_ids.add(self._next - 1)

    # -- the batched hot path ----------------------------------------------

    def insert_batch(self, offsets: np.ndarray, fps: np.ndarray,
                     store_id: int, tcp_seq: Optional[int],
                     flow: Optional[tuple], packet_counter: int,
                     fps_list: Optional[List[int]] = None) -> None:
        """Point every ``(offset, fingerprint)`` anchor at one packet.

        One packet record plus three vectorised array fills plus one
        C-speed bulk index update — no per-anchor Python objects.
        Later anchors win on duplicate fingerprints within the batch,
        matching the per-entry loop's newest-wins order.

        ``fps_list``, when given, must be ``fps.tolist()`` — callers
        that already materialised it (the encoder probes the same
        fingerprints before inserting) pass it in to skip a second
        conversion.
        """
        n = len(fps)
        rec = len(self._rec_store)
        self._rec_store.append(store_id)
        self._rec_seq.append(tcp_seq)
        self._rec_flow.append(flow)
        self._rec_counter.append(packet_counter)
        if n == 0:
            return
        if self._next + n - self._floor > self._capacity:
            self._make_room(n)
        base = self._next
        lo = base & self._mask
        if lo + n <= self._capacity:
            # Contiguous run: three plain slice stores.
            self._fps[lo:lo + n] = fps
            self._offsets[lo:lo + n] = offsets
            self._pkt[lo:lo + n] = rec
        else:
            head = self._capacity - lo
            self._fps[lo:] = fps[:head]
            self._fps[:n - head] = fps[head:]
            self._offsets[lo:] = offsets[:head]
            self._offsets[:n - head] = offsets[head:]
            self._pkt[lo:] = rec
            self._pkt[:n - head] = rec
        self._next = base + n
        index = self._index
        before = len(index)
        if fps_list is None:
            fps_list = fps.tolist()
        index.update(zip(fps_list, range(base, base + n)))
        self.inserts += n
        self.replacements += n - (len(index) - before)
        if self._scratch_tag is fps:
            # The candidate probe of this same fingerprint array left
            # its bitmap hashes in the scratch — stamp them directly.
            scratch = self._scratch_u64[:n]
            self._scratch_tag = None
        else:
            if len(self._scratch_u64) < n:
                self._scratch_u64 = np.empty(
                    max(n, 2 * len(self._scratch_u64)), dtype=np.uint64)
            scratch = self._scratch_u64[:n]
            np.multiply(fps, _FIB, out=scratch)
            scratch >>= self._bm_shift
        self._bm[scratch] = self._bm_epoch
        if len(index) > (len(self._bm) >> 3) and self._bm_bits < 22:
            self._rebuild_bitmap(self._bm_bits + 2)

    def candidates(self, fps: np.ndarray) -> np.ndarray:
        """Boolean mask: which fingerprints *may* be present.

        Vectorised prefilter for the encoder's region loop: no false
        negatives (every indexed fingerprint has its bit stamped with
        the current epoch), a few false positives (hash sharing plus
        stale bits from removed entries), all filtered by the index.
        """
        n = len(fps)
        if n == 0:
            return _EMPTY_BOOL
        if len(self._scratch_u64) < n:
            self._scratch_u64 = np.empty(
                max(n, 2 * len(self._scratch_u64)), dtype=np.uint64)
        hashed = self._scratch_u64[:n]
        np.multiply(fps, _FIB, out=hashed)
        hashed >>= self._bm_shift
        self._scratch_tag = fps
        return self._bm[hashed] == self._bm_epoch

    def candidate_indices(self, fps: np.ndarray) -> np.ndarray:
        """Indices of the fingerprints that *may* be present.

        :meth:`candidates` fused with the ``nonzero`` the encoder
        always performs next — one call, one fewer intermediate.
        """
        n = len(fps)
        if n == 0:
            return _EMPTY_I64
        if len(self._scratch_u64) < n:
            self._scratch_u64 = np.empty(
                max(n, 2 * len(self._scratch_u64)), dtype=np.uint64)
        hashed = self._scratch_u64[:n]
        np.multiply(fps, _FIB, out=hashed)
        hashed >>= self._bm_shift
        self._scratch_tag = fps
        return (self._bm[hashed] == self._bm_epoch).nonzero()[0]

    # -- scalar API (FingerprintTable-compatible) --------------------------

    def get(self, fingerprint: int) -> Optional[RingEntry]:
        entry_id = self._index.get(fingerprint)
        if entry_id is None:
            return None
        return RingEntry(self, entry_id)

    def get_id(self, fingerprint: int) -> Optional[int]:
        """Newest entry id for a fingerprint (internal fast probes)."""
        return self._index.get(fingerprint)

    def entry(self, entry_id: int) -> RingEntry:
        """View of a (valid) entry id."""
        return RingEntry(self, entry_id)

    def remove(self, fingerprint: int) -> None:
        self._index.pop(fingerprint, None)

    def clear(self) -> None:
        self._index.clear()
        self._rec_store.clear()
        self._rec_seq.clear()
        self._rec_flow.clear()
        self._rec_counter.clear()
        self._unusable_ids.clear()
        self._next = 0
        self._floor = 0
        self._scratch_tag = None
        self._bump_bitmap_epoch()

    def entries(self) -> Iterator[RingEntry]:
        """Views of the *current* entry of every indexed fingerprint."""
        for entry_id in list(self._index.values()):
            yield RingEntry(self, entry_id)

    def previous_entry(self, fingerprint: int) -> Optional[RingEntry]:
        """The newest older entry referencing a *different* packet.

        The decoder's one-generation history fallback: when a reference
        raced a cache update, the displaced entry (same fingerprint,
        previous stored packet) may still resolve it.  The ring keeps
        displaced generations in place until compaction or wrap, so no
        per-insert displacement tracking is needed — this scans the
        ring on demand (the fallback path is rare and checksum-gated).
        """
        window = self._next - self._floor
        if window == 0:
            return None
        ids = np.arange(self._floor, self._next, dtype=np.int64)
        slots = ids & self._mask
        matches = ids[self._fps[slots] == _U64(fingerprint)]
        if len(matches) == 0:
            return None
        ref_id = self._index.get(fingerprint)
        if ref_id is None:
            # Lazily removed (dangling store): the newest ring entry
            # plays the reference role, exactly as the dict table kept
            # its displaced entry after removing the current one.
            ref_id = int(matches[-1])
        ref_store = self._rec_store[int(self._pkt[ref_id & self._mask])]
        pkt = self._pkt
        rec_store = self._rec_store
        mask = self._mask
        for entry_id in matches[::-1].tolist():
            if entry_id >= ref_id:
                continue
            if rec_store[int(pkt[entry_id & mask])] != ref_store:
                return RingEntry(self, entry_id)
        return None

    # -- room making: wrap, compact, grow ----------------------------------

    def _make_room(self, n: int) -> None:
        if n > self._capacity and not self.autogrow:
            raise ValueError(
                f"batch of {n} exceeds fixed ring capacity {self._capacity}")
        if not self.autogrow:
            self._advance_floor(self._next + n - self._floor - self._capacity)
            return
        # Reachable entries are bounded by 2 per indexed fingerprint
        # (current + history candidate); compact when that fits in half
        # the ring, otherwise double.  Compaction must strictly shrink
        # the window to count as progress — a compact ring that still
        # cannot absorb the batch (e.g. a batch wider than the whole
        # capacity) has to fall through to growth or the loop would
        # never terminate.
        while self._next + n - self._floor > self._capacity:
            compacted = False
            if 4 * len(self._index) <= self._capacity:
                window = self._next - self._floor
                compacted = (self._compact()
                             and self._next - self._floor < window)
            if not compacted:
                self._grow()

    def _advance_floor(self, count: int) -> None:
        """Fixed-capacity wrap: invalidate the ``count`` oldest entries."""
        if count <= 0:
            return
        new_floor = self._floor + count
        index = self._index
        fps = self._fps
        mask = self._mask
        unusable = self._unusable_ids
        for entry_id in range(self._floor, new_floor):
            fp = int(fps[entry_id & mask])
            if index.get(fp) == entry_id:
                del index[fp]
                self.evictions += 1
            unusable.discard(entry_id)
        self._floor = new_floor

    def _reachable_ids(self) -> np.ndarray:
        """Sorted ids of every entry reachable through the public API:
        per fingerprint, the newest entry plus the newest older entry
        with a different stored packet (see :meth:`previous_entry`)."""
        window = self._next - self._floor
        if window == 0:
            return np.empty(0, dtype=np.int64)
        ids = np.arange(self._floor, self._next, dtype=np.int64)
        slots = ids & self._mask
        fps = self._fps[slots]
        stores = np.asarray(self._rec_store, dtype=np.int64)[self._pkt[slots]]
        order = np.lexsort((ids, fps))
        fps_s = fps[order]
        stores_s = stores[order]
        ids_s = ids[order]
        breaks = np.nonzero(fps_s[1:] != fps_s[:-1])[0]
        group_starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), breaks + 1])
        group_ends = np.concatenate(
            [breaks, np.array([window - 1], dtype=np.int64)])
        # Reference (newest) entry per group, broadcast to positions.
        group_of = np.zeros(window, dtype=np.int64)
        group_of[group_starts[1:]] = 1
        group_of = np.cumsum(group_of)
        ref_store = stores_s[group_ends][group_of]
        positions = np.arange(window, dtype=np.int64)
        candidate = np.where(stores_s != ref_store, positions, -1)
        cand_pos = np.maximum.reduceat(candidate, group_starts)
        cand_pos = cand_pos[cand_pos >= 0]
        keep = np.concatenate([ids_s[group_ends], ids_s[cand_pos]])
        return np.unique(keep)

    def _compact(self) -> bool:
        """Rewrite reachable entries contiguously; False when too full."""
        kept = self._reachable_ids()
        if 2 * len(kept) > self._capacity:
            return False
        old_slots = kept & self._mask
        remap: Dict[int, int] = dict(
            zip(kept.tolist(), range(len(kept))))
        fps = self._fps[old_slots]
        offsets = self._offsets[old_slots]
        pkt = self._pkt[old_slots]
        self._fps[:len(kept)] = fps
        self._offsets[:len(kept)] = offsets
        self._pkt[:len(kept)] = pkt
        self._index = {fp: remap[entry_id]
                       for fp, entry_id in self._index.items()}
        self._unusable_ids = {remap[entry_id]
                              for entry_id in self._unusable_ids
                              if entry_id in remap}
        self._floor = 0
        self._next = len(kept)
        self.compactions += 1
        return True

    def _grow(self) -> None:
        old_mask = self._mask
        capacity = self._capacity * 2
        fps = np.zeros(capacity, dtype=np.uint64)
        offsets = np.zeros(capacity, dtype=np.int64)
        pkt = np.zeros(capacity, dtype=np.int64)
        ids = np.arange(self._floor, self._next, dtype=np.int64)
        old_slots = ids & old_mask
        new_slots = ids & (capacity - 1)
        fps[new_slots] = self._fps[old_slots]
        offsets[new_slots] = self._offsets[old_slots]
        pkt[new_slots] = self._pkt[old_slots]
        self._fps = fps
        self._offsets = offsets
        self._pkt = pkt
        self._capacity = capacity
        self._mask = capacity - 1
        self.grows += 1

    # -- bitmap maintenance ------------------------------------------------

    def _bump_bitmap_epoch(self) -> None:
        self._bm_epoch += 1
        if self._bm_epoch == 256:
            self._bm.fill(0)
            self._bm_epoch = 1

    def _rebuild_bitmap(self, bits: int) -> None:
        self._scratch_tag = None
        self._bm_bits = bits
        self._bm = np.zeros(1 << bits, dtype=np.uint8)
        self._bm_shift = _U64(64 - bits)
        self._bm_epoch = 1
        if self._index:
            fps = np.fromiter(self._index.keys(), dtype=np.uint64,
                              count=len(self._index))
            hashed = fps * _FIB
            hashed >>= self._bm_shift
            self._bm[hashed] = self._bm_epoch

    # -- introspection (tests, oracles) ------------------------------------

    def id_window(self) -> Tuple[int, int]:
        """(floor, next): the currently valid id range."""
        return self._floor, self._next
