"""End-to-end payload checksums.

The real TCP checksum is what lets a receiver reject a segment whose
payload was corrupted on the wire *or* mis-reconstructed by a
desynchronised byte-caching decoder.  We model it with CRC32, which is
cheap and has a far lower undetected-error rate than the Internet
checksum — conservative in the right direction for this study (the
paper's decoder drops every packet it cannot faithfully reconstruct).

This lives in ``repro.core`` (not ``repro.net``) because the decoder's
§III-B acceptance test depends on it: the checksum is part of the
codec's correctness contract, while the network layer merely carries
it.  ``repro.net.checksum`` re-exports these names for transport-side
callers.
"""

from __future__ import annotations

import zlib


def payload_checksum(data: bytes) -> int:
    """Checksum of a transport payload as computed by the sender."""
    return zlib.crc32(data) & 0xFFFFFFFF


def verify_payload(data: bytes, checksum: int) -> bool:
    """True if ``data`` matches the sender's ``checksum``."""
    return payload_checksum(data) == checksum
