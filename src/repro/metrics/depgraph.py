"""Dependency-graph analysis of encoded packet streams (§IV-B, §VII).

The paper explains its results through the *dependency graph* between
IP packets: packet A depends on packet B when A's encoding references a
region cached from B (Fig. 5 shows the circular case; Fig. 14 walks an
actual capture).  This module rebuilds that graph from an encoder
gateway's dependency log plus the set of packets the decoder actually
delivered, and derives the quantities the paper discusses:

* which packets were *undecodable* and through which chain of missing
  ancestors (transitive loss amplification);
* cycle detection over same-segment retransmissions — the §IV-B
  circular-dependency signature;
* per-packet dependency degree (the File 1 ≈ 4 / File 2 ≈ 7 statistic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

#: Graph nodes are opaque hashable keys.  The metrics layer uses packet
#: ids (ints); the architecture linter (:mod:`repro.analysis`) reuses
#: the same structure with dotted module names (strs) as nodes and
#: layer names as segment keys, so layer-level import cycles fall out
#: of :meth:`DependencyGraph.segment_cycles` unchanged.
Node = Hashable


@dataclass
class DependencyGraph:
    """Directed graph: edge A -> B when A was encoded using B."""

    edges: Dict[Node, Set[Node]] = field(default_factory=dict)
    #: packets that physically left the encoder, in order
    sent: List[Node] = field(default_factory=list)
    #: map packet id -> TCP segment key (seq) for retransmission folding
    segment_of: Dict[Node, Hashable] = field(default_factory=dict)

    def add_packet(self, packet_id: Node, dependencies: Iterable[Node] = (),
                   segment: Optional[Hashable] = None) -> None:
        self.sent.append(packet_id)
        self.edges[packet_id] = set(dependencies)
        if segment is not None:
            self.segment_of[packet_id] = segment

    #: Alias for non-packet callers (the import-DAG reuse reads better
    #: as ``graph.add_node(module, imports, segment=layer)``).
    add_node = add_packet

    def dependencies_of(self, packet_id: Node) -> Set[Node]:
        return self.edges.get(packet_id, set())

    def degree(self, packet_id: Node) -> int:
        return len(self.dependencies_of(packet_id))

    def average_degree(self, encoded_only: bool = True) -> float:
        degrees = [len(deps) for deps in self.edges.values()
                   if deps or not encoded_only]
        if not degrees:
            return 0.0
        return sum(degrees) / len(degrees)

    # ------------------------------------------------------------------

    def undecodable_closure(self, lost: Set[Node]) -> Set[Node]:
        """All packets rendered undecodable by the ``lost`` set.

        A packet is undecodable when any of its dependencies is lost or
        (transitively) undecodable — the §IV-A cascade.  Packets are
        processed in send order, mirroring the decoder's behaviour.
        """
        dead: Set[int] = set(lost)
        for packet_id in self.sent:
            if packet_id in dead:
                continue
            if any(dep in dead for dep in self.dependencies_of(packet_id)):
                dead.add(packet_id)
        return dead - set(lost)

    def loss_amplification(self, lost: Set[Node]) -> float:
        """Undecodable packets per lost packet (perceived-loss driver)."""
        if not lost:
            return 0.0
        return len(self.undecodable_closure(lost)) / len(lost)

    def dependency_chain(self, packet_id: Node, dead: Set[Node],
                         limit: int = 20) -> List[Node]:
        """One root-cause chain: packet -> dead dependency -> ... .

        Follows dead dependencies breadth-first until it reaches a
        packet with no dead ancestors (the originally lost one).
        """
        chain = [packet_id]
        current = packet_id
        for _ in range(limit):
            dead_deps = [dep for dep in self.dependencies_of(current)
                         if dep in dead]
            if not dead_deps:
                break
            current = min(dead_deps)
            chain.append(current)
        return chain

    # ------------------------------------------------------------------

    def segment_cycles(self) -> List[Tuple[Hashable, ...]]:
        """Cycles after folding retransmissions of the same segment.

        §IV-B: IP_{i-1}, IP_{i+1} and IP_{i+2} "are in fact all the same
        TCP segment", so dependencies between *copies* of one segment
        and packets that depend back on it form cycles.  Each distinct
        cycle is returned as a tuple of segment keys.
        """
        # Build the folded graph over segment keys.
        folded: Dict[Hashable, Set[Hashable]] = {}
        for packet_id, deps in self.edges.items():
            source = self.segment_of.get(packet_id)
            if source is None:
                continue
            bucket = folded.setdefault(source, set())
            for dep in deps:
                target = self.segment_of.get(dep)
                if target is not None and target != source:
                    bucket.add(target)
                elif target == source:
                    bucket.add(source)  # self-loop: copy encoded vs copy

        cycles: List[Tuple[Hashable, ...]] = []
        visited: Set[Hashable] = set()

        def walk(node: Hashable, stack: List[Hashable],
                 on_stack: Set[Hashable]) -> None:
            visited.add(node)
            stack.append(node)
            on_stack.add(node)
            for neighbour in sorted(folded.get(node, ())):
                if neighbour in on_stack:
                    cycle = tuple(stack[stack.index(neighbour):])
                    if cycle not in cycles:
                        cycles.append(cycle)
                elif neighbour not in visited:
                    walk(neighbour, stack, on_stack)
            stack.pop()
            on_stack.remove(node)

        for node in sorted(folded):
            if node not in visited:
                walk(node, [], set())
        return cycles

    def has_self_dependency(self) -> bool:
        """True when some segment's copy is encoded against another copy
        of the same segment — the naive policy's livelock signature."""
        return any(len(cycle) == 1 for cycle in self.segment_cycles())


def graph_from_gateways(encoder_gateway, delivered_ids: Set[int],
                        segment_keys: Optional[Dict[int, int]] = None
                        ) -> Tuple[DependencyGraph, Set[int]]:
    """Build a graph from an :class:`EncoderGateway` dependency log.

    ``delivered_ids`` are the packet ids the decoder forwarded; the
    complement (packets sent but never delivered) is returned as the
    lost/undecodable seed set.
    """
    graph = DependencyGraph()
    log = encoder_gateway.dependency_log
    for packet_id in sorted(log):
        segment = None
        if segment_keys is not None:
            segment = segment_keys.get(packet_id)
        graph.add_packet(packet_id, log[packet_id], segment=segment)
    lost = {packet_id for packet_id in graph.sent
            if packet_id not in delivered_ids}
    return graph, lost


def format_dependency_trace(graph: DependencyGraph, dead: Set[int],
                            max_rows: int = 20) -> str:
    """A Fig. 14-style rendering: per packet, its dependencies and fate."""
    lines = ["packet   fate         depends on"]
    for packet_id in graph.sent[:max_rows]:
        deps = sorted(graph.dependencies_of(packet_id))
        fate = "DROPPED" if packet_id in dead else "ok"
        dep_text = ", ".join(str(d) for d in deps) if deps else "-"
        lines.append(f"{packet_id:<8} {fate:<12} {dep_text}")
    return "\n".join(lines)
