"""Metrics: per-run collectors, dependency graphs, reports."""

from .collectors import RatioPoint, TransferResult
from .depgraph import (DependencyGraph, format_dependency_trace,
                       graph_from_gateways)
from .profiling import STAGES, StageProfiler, profiler_if
from .report import format_series, format_table, format_timeseries
from .series import Aggregate, Series, sweep
from .telemetry import (TELEMETRY_SCHEMA, FlightRecorder, MetricsRegistry,
                        Telemetry, TelemetryConfig, TelemetrySampler,
                        telemetry_if, validate_telemetry)

__all__ = [
    "STAGES",
    "StageProfiler",
    "profiler_if",
    "TELEMETRY_SCHEMA",
    "FlightRecorder",
    "MetricsRegistry",
    "Telemetry",
    "TelemetryConfig",
    "TelemetrySampler",
    "telemetry_if",
    "validate_telemetry",
    "format_timeseries",
    "RatioPoint",
    "TransferResult",
    "DependencyGraph",
    "format_dependency_trace",
    "graph_from_gateways",
    "format_series",
    "format_table",
    "Aggregate",
    "Series",
    "sweep",
]
