"""Metrics: per-run collectors, dependency graphs, reports."""

from .collectors import RatioPoint, TransferResult
from .depgraph import (DependencyGraph, format_dependency_trace,
                       graph_from_gateways)
from .report import format_series, format_table
from .series import Aggregate, Series, sweep

__all__ = [
    "RatioPoint",
    "TransferResult",
    "DependencyGraph",
    "format_dependency_trace",
    "graph_from_gateways",
    "format_series",
    "format_table",
    "Aggregate",
    "Series",
    "sweep",
]
