"""Metrics: per-run collectors, dependency graphs, reports."""

from .collectors import RatioPoint, TransferResult
from .depgraph import (DependencyGraph, format_dependency_trace,
                       graph_from_gateways)
from .flame import FlameNode, build_flame, format_flame, to_folded
from .profiling import STAGES, StageProfiler, profiler_if
from .regression import (BENCH_DIFF_SCHEMA, BenchDiff, BenchSpec,
                         SentinelConfig, bench_diff_report,
                         format_bench_diff, load_bench_config,
                         run_bench_diff)
from .report import format_series, format_table, format_timeseries
from .series import Aggregate, Series, sweep
from .spans import (SPANS_SCHEMA, Span, SpanRecorder, find_livelock_trace,
                    format_chain, spans_by_trace, spans_if, spans_rollup,
                    validate_spans)
from .telemetry import (TELEMETRY_SCHEMA, FlightRecorder, MetricsRegistry,
                        Telemetry, TelemetryConfig, TelemetrySampler,
                        telemetry_if, validate_telemetry)

__all__ = [
    "STAGES",
    "StageProfiler",
    "profiler_if",
    "SPANS_SCHEMA",
    "Span",
    "SpanRecorder",
    "spans_if",
    "spans_rollup",
    "spans_by_trace",
    "find_livelock_trace",
    "format_chain",
    "validate_spans",
    "FlameNode",
    "build_flame",
    "format_flame",
    "to_folded",
    "BENCH_DIFF_SCHEMA",
    "BenchDiff",
    "BenchSpec",
    "SentinelConfig",
    "bench_diff_report",
    "format_bench_diff",
    "load_bench_config",
    "run_bench_diff",
    "TELEMETRY_SCHEMA",
    "FlightRecorder",
    "MetricsRegistry",
    "Telemetry",
    "TelemetryConfig",
    "TelemetrySampler",
    "telemetry_if",
    "validate_telemetry",
    "format_timeseries",
    "RatioPoint",
    "TransferResult",
    "DependencyGraph",
    "format_dependency_trace",
    "graph_from_gateways",
    "format_series",
    "format_table",
    "Aggregate",
    "Series",
    "sweep",
]
