"""Bench regression sentinel: enforce perf trends, don't just record them.

``benchmarks/bench_hotpath.py`` and friends append every run to the
``history`` list inside their ``BENCH_*.json`` records (PR 7).  This
module reads that history and answers *did the current run regress* —
statistically, not by eyeballing:

* paired ratios ``r_i = current / history_i`` for a lower-is-better
  metric (flipped for higher-is-better), so each comparison is against
  a real prior run rather than a fitted baseline;
* the **median** ratio over the last ``window`` records (robust to a
  single noisy CI run);
* a seeded bootstrap confidence interval over the ratio median; a
  bench regresses only when the *entire* interval sits above its
  per-bench threshold — noise produces wide intervals, and wide
  intervals don't fire the sentinel.

Configuration lives in ``pyproject.toml`` under ``[tool.repro-bench]``
(thresholds are per-bench, next to the hot-path roster they protect).
Like the architecture lint's config loader this parses with ``tomllib``
on 3.11+ and falls back to a minimal subset parser on 3.10 — but it is
deliberately self-contained: ``repro.metrics`` sits *below*
``repro.analysis`` in the layer DAG and must not import it.

``repro bench diff`` is the CLI face; CI's ``bench-sentinel`` job runs
it on the committed history (must pass) and on a doctored copy with a
25% injected slowdown (must exit non-zero).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 CI
    tomllib = None  # type: ignore[assignment]

BENCH_DIFF_SCHEMA = "bench_diff/v1"

#: Statuses that do NOT fail the sentinel.
_PASSING = ("ok", "insufficient-history", "missing")


@dataclass
class BenchSpec:
    """One guarded benchmark record."""

    name: str
    file: str
    metric: str
    direction: str = "lower"  # "lower" | "higher" (is better)
    threshold: float = 1.15   # median-ratio the CI must clear to fail


@dataclass
class SentinelConfig:
    window: int = 5           # compare against the last K history records
    min_history: int = 3      # fewer records -> "insufficient-history"
    bootstrap: int = 800      # resamples for the CI
    confidence: float = 0.95
    seed: int = 20120612      # ICDCS'12 — any fixed seed works
    benches: List[BenchSpec] = field(default_factory=list)


@dataclass
class BenchDiff:
    """Verdict for one benchmark."""

    name: str
    metric: str
    status: str               # ok | regression | insufficient-history | missing
    current: Optional[float] = None
    baseline_n: int = 0
    median_ratio: Optional[float] = None
    ci_low: Optional[float] = None
    ci_high: Optional[float] = None
    threshold: float = 0.0
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "metric": self.metric, "status": self.status,
            "current": self.current, "baseline_n": self.baseline_n,
            "median_ratio": self.median_ratio,
            "ci_low": self.ci_low, "ci_high": self.ci_high,
            "threshold": self.threshold, "note": self.note,
        }


# -- config loading --------------------------------------------------------

def _parse_scalar(text: str) -> Any:
    text = text.strip()
    if text.startswith(('"', "'")):
        return text[1:-1]
    if text in ("true", "false"):
        return text == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _parse_bench_subset(text: str) -> Dict[str, Any]:
    """Minimal TOML parser for ``[tool.repro-bench*]`` tables only.

    Handles the subset those tables use — bare key/value pairs with
    string, int, float, bool scalars, and ``#`` comments.  Same
    fallback strategy as repro.analysis.config, re-implemented here
    because metrics may not import the analysis layer.
    """
    tables: Dict[str, Any] = {}
    current: Optional[Dict[str, Any]] = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            name = line.strip("[]").strip()
            if name == "tool.repro-bench" \
                    or name.startswith("tool.repro-bench."):
                current = tables
                for part in name.split(".")[2:]:
                    current = current.setdefault(part, {})
            else:
                current = None
            continue
        if current is None or "=" not in line:
            continue
        key, _, value = line.partition("=")
        hash_pos = value.find("#")
        if hash_pos != -1 and '"' not in value[:hash_pos] \
                and "'" not in value[:hash_pos]:
            value = value[:hash_pos]
        current[key.strip()] = _parse_scalar(value)
    return tables


def load_bench_config(root: Path) -> SentinelConfig:
    """Read ``[tool.repro-bench]`` from ``<root>/pyproject.toml``."""
    path = Path(root) / "pyproject.toml"
    if not path.is_file():
        return SentinelConfig()
    text = path.read_text()
    if tomllib is not None:
        data = tomllib.loads(text)
        table = data.get("tool", {}).get("repro-bench", {})
    else:
        table = _parse_bench_subset(text)
    config = SentinelConfig(
        window=int(table.get("window", 5)),
        min_history=int(table.get("min-history", 3)),
        bootstrap=int(table.get("bootstrap", 800)),
        confidence=float(table.get("confidence", 0.95)),
        seed=int(table.get("seed", 20120612)),
    )
    for name in sorted(table.get("benches", {})):
        entry = table["benches"][name]
        config.benches.append(BenchSpec(
            name=name,
            file=str(entry.get("file", f"BENCH_{name}.json")),
            metric=str(entry["metric"]),
            direction=str(entry.get("direction", "lower")),
            threshold=float(entry.get("threshold", 1.15)),
        ))
    return config


# -- the statistics --------------------------------------------------------

def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def bootstrap_ci(ratios: List[float], resamples: int, confidence: float,
                 rng: random.Random) -> Tuple[float, float]:
    """Percentile bootstrap CI over the median of ``ratios``."""
    n = len(ratios)
    medians = []
    for _ in range(resamples):
        sample = [ratios[rng.randrange(n)] for _ in range(n)]
        medians.append(_median(sample))
    medians.sort()
    alpha = (1.0 - confidence) / 2.0
    low = medians[max(0, int(alpha * resamples))]
    high = medians[min(resamples - 1, int((1.0 - alpha) * resamples))]
    return (low, high)


def diff_bench(spec: BenchSpec, doc: Dict[str, Any], config: SentinelConfig,
               rng: random.Random) -> BenchDiff:
    """Verdict for one BENCH record against its own history."""
    summary = doc.get("summary", {})
    current = summary.get(spec.metric)
    if not isinstance(current, (int, float)):
        return BenchDiff(name=spec.name, metric=spec.metric, status="missing",
                         threshold=spec.threshold,
                         note=f"metric {spec.metric!r} absent from summary")
    history = doc.get("history", [])[-config.window:]
    baseline = [h[spec.metric] for h in history
                if isinstance(h.get(spec.metric), (int, float))
                and h[spec.metric] > 0]
    if len(baseline) < config.min_history:
        return BenchDiff(
            name=spec.name, metric=spec.metric, status="insufficient-history",
            current=float(current), baseline_n=len(baseline),
            threshold=spec.threshold,
            note=f"{len(baseline)} usable history records "
                 f"(need {config.min_history}); trend not yet enforceable")
    if spec.direction == "higher":
        ratios = [b / current for b in baseline]
    else:
        ratios = [current / b for b in baseline]
    median = _median(ratios)
    ci_low, ci_high = bootstrap_ci(ratios, config.bootstrap,
                                   config.confidence, rng)
    # Regression only when the whole CI clears the threshold: a noisy
    # run widens the interval and cannot fire the sentinel by itself.
    status = "regression" if ci_low > spec.threshold else "ok"
    note = ""
    if status == "ok" and median > spec.threshold:
        note = (f"median ratio {median:.3f} above threshold but CI "
                f"[{ci_low:.3f}, {ci_high:.3f}] still straddles it")
    return BenchDiff(
        name=spec.name, metric=spec.metric, status=status,
        current=float(current), baseline_n=len(baseline),
        median_ratio=median, ci_low=ci_low, ci_high=ci_high,
        threshold=spec.threshold, note=note)


def run_bench_diff(root: Path, bench_dir: Optional[Path] = None,
                   window: Optional[int] = None
                   ) -> Tuple[List[BenchDiff], int]:
    """Diff every configured bench; returns (verdicts, exit_code)."""
    config = load_bench_config(root)
    if window is not None:
        config.window = window
    bench_dir = Path(bench_dir) if bench_dir is not None else Path(root)
    rng = random.Random(config.seed)
    diffs: List[BenchDiff] = []
    for spec in config.benches:
        path = bench_dir / spec.file
        if not path.is_file():
            diffs.append(BenchDiff(
                name=spec.name, metric=spec.metric, status="missing",
                threshold=spec.threshold, note=f"{spec.file} not found"))
            continue
        try:
            doc = json.loads(path.read_text())
        except ValueError as exc:
            diffs.append(BenchDiff(
                name=spec.name, metric=spec.metric, status="missing",
                threshold=spec.threshold, note=f"unreadable: {exc}"))
            continue
        diffs.append(diff_bench(spec, doc, config, rng))
    exit_code = 0 if all(d.status in _PASSING for d in diffs) else 1
    return diffs, exit_code


def bench_diff_report(diffs: List[BenchDiff]) -> Dict[str, Any]:
    return {
        "schema": BENCH_DIFF_SCHEMA,
        "summary": {
            "benches": len(diffs),
            "regressions": sum(1 for d in diffs if d.status == "regression"),
        },
        "diffs": [d.to_dict() for d in diffs],
    }


def format_bench_diff(diffs: List[BenchDiff]) -> List[str]:
    lines = [f"{'bench':<12} {'metric':<18} {'status':<22} "
             f"{'ratio':>7} {'ci':>17} {'thr':>6}"]
    for d in diffs:
        ratio = f"{d.median_ratio:.3f}" if d.median_ratio is not None else "-"
        ci = (f"[{d.ci_low:.3f},{d.ci_high:.3f}]"
              if d.ci_low is not None else "-")
        lines.append(f"{d.name:<12} {d.metric:<18} {d.status:<22} "
                     f"{ratio:>7} {ci:>17} {d.threshold:>6.2f}")
        if d.note:
            lines.append(f"{'':12} note: {d.note}")
    return lines
