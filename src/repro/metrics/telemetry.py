"""Unified run telemetry: metrics registry, sim-time sampler, flight recorder.

The paper's key effects are *trajectories*, not end-of-run scalars:
aggressive encoding inflates perceived loss over time until TCP's
window collapses and the RTO backs off exponentially (Fig. 6, Fig. 13).
:class:`~repro.metrics.collectors.TransferResult` only snapshots the
end state; this module records how a run got there.

Three cooperating pieces, modelled on what a production DRE middlebox
would ship with:

* :class:`MetricsRegistry` — label-aware counters, gauges and bounded
  histograms.  Gauges are *pull-based*: they hold a callable read at
  sample time, so instrumented hot paths pay nothing while the sampler
  is idle.  Components accept an optional registry/telemetry reference
  and guard every use with one ``is not None`` check — the disabled
  path stays within the ``bench_hotpath`` overhead budget.
* :class:`TelemetrySampler` — snapshots every registered gauge on a
  simulated-time tick into *aligned* time series (one shared time axis;
  gauges registered mid-run are nan-padded back to the start).  Memory
  is bounded: when ``max_samples`` is reached the sampler halves its
  history and doubles its interval, keeping full-run coverage at
  degrading resolution instead of truncating the tail.
* :class:`FlightRecorder` — a bounded ring of recent trace/telemetry
  events per flow (falling back to per-source), fed from the existing
  :meth:`repro.sim.trace.Tracer.emit` call sites without enabling full
  tracing.  It is dumped automatically on stall, watchdog trip or
  time-limit expiry so a failed run is post-mortem-debuggable from its
  result object alone.

Everything is wired per run by :mod:`repro.experiments.runner` when
``ExperimentConfig(telemetry=True)``; the export (schema
``telemetry/v1``) lands in ``TransferResult.telemetry``, flows through
the sweep engine into ``bench_telemetry/v1`` files, and renders as
ASCII time series via ``repro timeline``.
"""

from __future__ import annotations

import json
import math
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

TELEMETRY_SCHEMA = "telemetry/v1"

#: Default histogram bucket upper bounds (seconds-ish scale; callers
#: pass their own for byte- or count-valued observations).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


def metric_key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical ``name{k=v,...}`` identity of one labelled metric."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing labelled counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    @property
    def key(self) -> str:
        return metric_key(self.name, self.labels)


class Gauge:
    """A labelled instantaneous value.

    Either *pull-based* (constructed with ``fn``, read at sample time —
    the form every built-in instrumentation site uses, because it costs
    the instrumented code nothing) or *push-based* via :meth:`set`.
    """

    __slots__ = ("name", "labels", "fn", "_value")

    def __init__(self, name: str, labels: Dict[str, Any],
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.labels = labels
        self.fn = fn
        self._value = math.nan

    def set(self, value: float) -> None:
        self._value = float(value)

    def read(self) -> float:
        if self.fn is not None:
            try:
                return float(self.fn())
            except Exception:
                # A gauge must never take the run down: a callback over
                # torn-down state (e.g. a closed connection) reads nan.
                return math.nan
        return self._value

    @property
    def key(self) -> str:
        return metric_key(self.name, self.labels)


class Histogram:
    """A bounded labelled histogram (fixed bucket upper bounds).

    ``observe`` is O(#buckets) with no allocation, and the memory
    footprint is fixed at construction — safe to leave attached to
    per-packet paths.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str, labels: Dict[str, Any],
                 bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)   # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        if self.count == 0:
            return math.nan
        return self.total / self.count

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {
                **{str(bound): self.counts[i]
                   for i, bound in enumerate(self.bounds)},
                "+inf": self.counts[-1],
            },
        }

    @property
    def key(self) -> str:
        return metric_key(self.name, self.labels)


class MetricsRegistry:
    """Label-aware registry of counters, gauges and histograms.

    Metrics are memoised by ``(name, labels)``: asking twice for the
    same identity returns the same object, so independent components
    can share a counter without coordination.
    """

    def __init__(self) -> None:
        self._counters: "OrderedDict[str, Counter]" = OrderedDict()
        self._gauges: "OrderedDict[str, Gauge]" = OrderedDict()
        self._histograms: "OrderedDict[str, Histogram]" = OrderedDict()

    # -- registration ------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = metric_key(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            counter = Counter(name, labels)
            self._counters[key] = counter
        return counter

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              **labels: Any) -> Gauge:
        key = metric_key(name, labels)
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = Gauge(name, labels, fn)
            self._gauges[key] = gauge
        elif fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        key = metric_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = Histogram(name, labels, bounds)
            self._histograms[key] = histogram
        return histogram

    # -- introspection -----------------------------------------------------

    def gauges(self) -> Iterator[Gauge]:
        return iter(self._gauges.values())

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def snapshot(self) -> Dict[str, Any]:
        """Instantaneous JSON-friendly view of every metric."""
        return {
            "counters": {c.key: c.value for c in self._counters.values()},
            "gauges": {g.key: _json_number(g.read())
                       for g in self._gauges.values()},
            "histograms": {h.key: h.summary()
                           for h in self._histograms.values()},
        }


def _json_number(value: float) -> Optional[float]:
    """nan/inf are not valid JSON scalars; export them as null."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


# ---------------------------------------------------------------------------
# sampler
# ---------------------------------------------------------------------------

class TelemetrySampler:
    """Snapshots registry gauges on a sim-time tick into aligned series.

    All series share one ``times`` axis.  A gauge registered after
    sampling began is nan-padded back to the first tick so every series
    has ``len(times)`` points.  When ``max_samples`` is hit the sampler
    *decimates*: it drops every other stored sample and doubles the
    tick interval, so an arbitrarily long (e.g. stalled-until-limit)
    run stays bounded while keeping whole-run coverage.
    """

    def __init__(self, sim, registry: MetricsRegistry,
                 interval: float = 0.05, max_samples: int = 2048):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if max_samples < 8:
            raise ValueError("max_samples must be at least 8")
        self.sim = sim
        self.registry = registry
        self.interval = float(interval)
        self.initial_interval = float(interval)
        self.max_samples = int(max_samples)
        self.times: List[float] = []
        self._series: "OrderedDict[str, List[float]]" = OrderedDict()
        self.decimations = 0
        self._started = False

    def start(self) -> None:
        """Take the t=0 sample and begin ticking."""
        if self._started:
            return
        self._started = True
        self._tick()

    def sample_once(self) -> None:
        """Record one aligned sample of every gauge right now."""
        now = self.sim.now
        self.times.append(now)
        n_before = len(self.times) - 1
        series = self._series
        for gauge in self.registry.gauges():
            key = gauge.key
            values = series.get(key)
            if values is None:
                # Late registration: align with the shared time axis.
                values = [math.nan] * n_before
                series[key] = values
            values.append(gauge.read())
        # Gauges can in principle disappear only with the registry; a
        # registry never drops entries, so no per-series pad-out needed.
        if len(self.times) >= self.max_samples:
            self._decimate()

    def series(self) -> Dict[str, List[float]]:
        """key -> aligned value list (same length as :attr:`times`)."""
        return dict(self._series)

    # -- internal ----------------------------------------------------------

    def _tick(self) -> None:
        self.sample_once()
        self.sim.after(self.interval, self._tick)

    def _decimate(self) -> None:
        self.decimations += 1
        self.interval *= 2.0
        self.times = self.times[::2]
        for key, values in self._series.items():
            self._series[key] = values[::2]

    def export(self) -> Dict[str, Any]:
        return {
            "interval": self.interval,
            "initial_interval": self.initial_interval,
            "decimations": self.decimations,
            "times": list(self.times),
            "series": {key: [_json_number(v) for v in values]
                       for key, values in self._series.items()},
        }


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------

class FlightRecorder:
    """Bounded ring of recent events, grouped per flow.

    Events arrive from :meth:`repro.sim.trace.Tracer.emit` call sites
    (the tracer feeds an attached recorder even while full tracing is
    disabled) and from explicit :meth:`note` calls.  Grouping key: the
    event detail's ``flow`` if present, else the emitting source — so a
    chatty component cannot evict another flow's history.  Both the
    ring length and the number of distinct groups are bounded; when a
    new group would exceed the bound it spills into a shared overflow
    ring rather than growing without limit.
    """

    def __init__(self, ring_size: int = 128, max_flows: int = 16):
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        if max_flows <= 0:
            raise ValueError("max_flows must be positive")
        self.ring_size = ring_size
        self.max_flows = max_flows
        self._rings: "OrderedDict[Any, deque]" = OrderedDict()
        self._overflow: deque = deque(maxlen=ring_size)
        self._seq = 0
        self.events_seen = 0
        # Duck-typed causal span recorder (repro.metrics.spans).  When
        # set, recorded events are annotated with the trace/span ids of
        # the packet they concern (falling back to the active span
        # context), so a flight-recorder dump attached to an
        # InvariantViolation points back at a replayable causal chain.
        self.spans = None

    def record(self, time: float, source: str, event: str,
               detail: Optional[Dict[str, Any]] = None) -> None:
        """Append one event to its flow's ring."""
        detail = detail if detail is not None else {}
        spans = self.spans
        if spans is not None and "trace" not in detail:
            trace_id, span_id = spans.ids_for_packet(detail.get("packet_id"))
            if trace_id is None:
                trace_id, span_id = spans.current_ids()
            if trace_id is not None:
                detail["trace"] = trace_id
                detail["span"] = span_id
        key = detail.get("flow", source)
        ring = self._rings.get(key)
        if ring is None:
            if len(self._rings) >= self.max_flows:
                ring = self._overflow
            else:
                ring = deque(maxlen=self.ring_size)
                self._rings[key] = ring
        self.events_seen += 1
        self._seq += 1
        ring.append((time, self._seq, source, event, detail))

    def note(self, time: float, source: str, event: str,
             **detail: Any) -> None:
        """Record a telemetry-originated (non-tracer) event."""
        self.record(time, source, event, detail)

    def dump(self, max_events: Optional[int] = None) -> List[Dict[str, Any]]:
        """All retained events merged in time order (oldest first).

        ``max_events`` keeps only the most recent N after merging.
        """
        merged: List[Tuple[float, int, str, str, Dict[str, Any]]] = []
        for ring in self._rings.values():
            merged.extend(ring)
        merged.extend(self._overflow)
        merged.sort(key=lambda item: (item[0], item[1]))
        if max_events is not None:
            merged = merged[-max_events:]
        return [{"time": time, "source": source, "event": event,
                 "detail": dict(detail)}
                for time, _seq, source, event, detail in merged]

    def __len__(self) -> int:
        return (sum(len(ring) for ring in self._rings.values())
                + len(self._overflow))


# ---------------------------------------------------------------------------
# per-run facade
# ---------------------------------------------------------------------------

@dataclass
class TelemetryConfig:
    """Tunables accepted via ``ExperimentConfig(telemetry_kwargs=...)``."""

    sample_interval: float = 0.05    # simulated seconds between samples
    max_samples: int = 2048          # decimation threshold (see sampler)
    flight_ring: int = 128           # events retained per flow
    flight_flows: int = 16           # distinct flow rings
    dump_events: int = 64            # flight-recorder rows in the export
    #: Register the 4 per-connection TCP gauges.  A single-transfer run
    #: has a handful of connections and wants them all; a serving run
    #: churns thousands of short flows through one stack and must turn
    #: this off (the aggregate stack/gateway gauges remain).
    per_connection: bool = True
    #: Register per-shard occupancy/eviction gauges for sharded caches.
    per_shard: bool = True


class Telemetry:
    """Everything one instrumented run carries.

    Components never import this class; they duck-type against the
    ``register_*`` helpers (keeping :mod:`repro.sim` and
    :mod:`repro.net` import-independent of the metrics package) and
    treat a ``None`` telemetry reference as "disabled".
    """

    def __init__(self, sim, config: Optional[TelemetryConfig] = None):
        self.sim = sim
        self.config = config if config is not None else TelemetryConfig()
        self.registry = MetricsRegistry()
        self.sampler = TelemetrySampler(
            sim, self.registry,
            interval=self.config.sample_interval,
            max_samples=self.config.max_samples)
        self.recorder = FlightRecorder(
            ring_size=self.config.flight_ring,
            max_flows=self.config.flight_flows)
        # Gauges registered per connection, so a pruned connection's
        # callbacks can be detached (the registry itself never drops
        # entries — the sampler's alignment depends on that).
        self._conn_gauges: Dict[int, List[Gauge]] = {}

    # -- component registration hooks -------------------------------------
    # Called by the runner and by instrumented components; each
    # registers pull gauges only, so the instrumented hot paths carry
    # no per-packet cost beyond their existing `is not None` guard.

    def register_link(self, link) -> None:
        """Queue depth and loss accounting of one simulated link."""
        name = link.name
        self.registry.gauge("link.queue_depth",
                            fn=lambda l=link: l._queued, link=name)
        stats = link.stats
        self.registry.gauge("link.packets_lost",
                            fn=lambda s=stats: s.packets_lost, link=name)
        self.registry.gauge("link.packets_offered",
                            fn=lambda s=stats: s.packets_offered, link=name)

    def register_connection(self, conn, label: str) -> None:
        """cwnd / ssthresh / RTO / in-flight of one TCP connection."""
        if not self.config.per_connection:
            return
        gauges = [
            self.registry.gauge("tcp.cwnd",
                                fn=lambda c=conn: c.cc.cwnd, conn=label),
            self.registry.gauge("tcp.ssthresh",
                                fn=lambda c=conn: min(c.cc.ssthresh, 1 << 30),
                                conn=label),
            self.registry.gauge("tcp.rto",
                                fn=lambda c=conn: c.rto.rto, conn=label),
            self.registry.gauge("tcp.inflight",
                                fn=lambda c=conn: c.flight_size, conn=label),
        ]
        self._conn_gauges[id(conn)] = gauges

    def unregister_connection(self, conn) -> None:
        """Detach a pruned connection's gauge callbacks.

        The gauge objects stay registered (series alignment), but stop
        holding the connection: they read nan from here on and the
        connection object becomes collectable.
        """
        for gauge in self._conn_gauges.pop(id(conn), ()):
            gauge.fn = None

    def register_gateway(self, gateway, role: str) -> None:
        """Cache occupancy/evictions and drop accounting of a gateway."""
        cache = gateway.cache
        self.registry.gauge("cache.entries",
                            fn=lambda c=cache: len(c.store), gw=role)
        self.registry.gauge("cache.bytes",
                            fn=lambda c=cache: c.store.bytes_used, gw=role)
        self.registry.gauge("cache.evictions",
                            fn=lambda c=cache: c.store.evictions, gw=role)
        self.registry.gauge("cache.epoch",
                            fn=lambda c=cache: c.epoch, gw=role)
        shards = getattr(cache, "shards", None)
        if shards is not None and self.config.per_shard:
            # Sharded serving cache: per-shard occupancy and eviction
            # gauges (duck-typed — only repro.core.shardcache has them).
            for shard in shards:
                index = shard.index
                self.registry.gauge(
                    "cache.shard_bytes",
                    fn=lambda s=shard: s.store.bytes_used,
                    gw=role, shard=index)
                self.registry.gauge(
                    "cache.shard_entries",
                    fn=lambda s=shard: len(s.table),
                    gw=role, shard=index)
                self.registry.gauge(
                    "cache.shard_evictions",
                    fn=lambda s=shard: s.store.evictions,
                    gw=role, shard=index)
        stats = gateway.stats
        self.registry.gauge("gw.undecodable_dropped",
                            fn=lambda s=stats: s.undecodable_dropped, gw=role)
        self.registry.gauge("gw.decoded_ok",
                            fn=lambda s=stats: s.decoded_ok, gw=role)
        self.registry.gauge("gw.data_packets",
                            fn=lambda s=stats: s.data_packets, gw=role)
        if gateway.resilience is not None:
            self._register_resilience(gateway, role)

    def _register_resilience(self, gateway, role: str) -> None:
        resilience = gateway.resilience
        stats = resilience.stats
        self.registry.gauge(
            "resilience.resyncing",
            fn=lambda r=resilience: float(getattr(r, "resyncing", False)),
            gw=role)
        self.registry.gauge(
            "resilience.degraded",
            fn=lambda s=stats: float(s.degraded), gw=role)
        self.registry.gauge(
            "resilience.watchdog_trips",
            fn=lambda s=stats: s.watchdog_trips, gw=role)
        self.registry.gauge(
            "resilience.resyncs_completed",
            fn=lambda s=stats: s.resyncs_completed, gw=role)

    def register_verifier(self, verifier) -> None:
        """Surface the verification oracles' progress as gauges.

        Registered by the runner when a run arms both ``telemetry`` and
        ``verify``: the two layers already share the flight recorder
        (oracle notes land next to the trace events they explain), and
        this makes the oracle activity — regions judged, coherence scans
        performed, drops observed — visible in the sampled series and
        the telemetry/v1 export.
        """
        self.registry.gauge("verify.regions_checked",
                            fn=lambda v=verifier: v.regions_checked)
        self.registry.gauge("verify.coherence_checks",
                            fn=lambda v=verifier: v.coherence_checks)
        self.registry.gauge("verify.undecodable_seen",
                            fn=lambda v=verifier: v.undecodable_seen)
        self.registry.gauge("verify.stale_seen",
                            fn=lambda v=verifier: v.stale_seen)

    def register_dre_pair(self, encoder_gateway, decoder_gateway) -> None:
        """The running perceived-loss rate (Fig. 13's quantity, live)."""
        enc, dec = encoder_gateway.stats, decoder_gateway.stats

        def perceived() -> float:
            offered = enc.data_packets
            if offered == 0:
                return 0.0
            return max(0.0, 1.0 - dec.decoded_ok / offered)

        self.registry.gauge("dre.perceived_loss", fn=perceived)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.sampler.start()

    def trace_sink(self) -> Callable[[float, str, str, Dict[str, Any]], None]:
        """The callback a :class:`~repro.sim.trace.Tracer` feeds."""
        return self.recorder.record

    def export(self, reason: str = "completed",
               dump_flight_recorder: bool = True) -> Dict[str, Any]:
        """The ``telemetry/v1`` document for this run.

        ``reason`` records why the run ended (``completed``, ``stall``,
        ``watchdog``, ``time_limit``); the flight-recorder dump is
        included for the post-mortem reasons and elided on a clean
        completion unless explicitly requested.
        """
        # One final sample so the series reach the end of the run.
        self.sampler.sample_once()
        snapshot = self.registry.snapshot()
        return {
            "schema": TELEMETRY_SCHEMA,
            "reason": reason,
            "sampler": self.sampler.export(),
            "counters": snapshot["counters"],
            "final_gauges": snapshot["gauges"],
            "histograms": snapshot["histograms"],
            "flight_recorder": (
                self.recorder.dump(self.config.dump_events)
                if dump_flight_recorder else []),
            "flight_recorder_events_seen": self.recorder.events_seen,
        }


def telemetry_if(enabled: bool, sim,
                 **kwargs: Any) -> Optional[Telemetry]:
    """``Telemetry`` when enabled, else ``None`` (the fast path).

    Mirrors :func:`repro.metrics.profiling.profiler_if`; ``kwargs`` are
    :class:`TelemetryConfig` fields.
    """
    if not enabled:
        return None
    return Telemetry(sim, TelemetryConfig(**kwargs))


def validate_telemetry(doc: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid telemetry/v1 export.

    Cheap structural validation used by tests and the CI smoke step.
    """
    if not isinstance(doc, dict):
        raise ValueError("telemetry export must be a dict")
    if doc.get("schema") != TELEMETRY_SCHEMA:
        raise ValueError(f"bad schema: {doc.get('schema')!r}")
    sampler = doc.get("sampler")
    if not isinstance(sampler, dict):
        raise ValueError("missing sampler section")
    times = sampler.get("times")
    series = sampler.get("series")
    if not isinstance(times, list) or not isinstance(series, dict):
        raise ValueError("sampler must carry times + series")
    for key, values in series.items():
        if len(values) != len(times):
            raise ValueError(
                f"series {key!r} misaligned: {len(values)} values "
                f"for {len(times)} times")
    for section in ("counters", "final_gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            raise ValueError(f"missing section {section!r}")
    if not isinstance(doc.get("flight_recorder"), list):
        raise ValueError("missing flight_recorder list")


def dumps_export(doc: Dict[str, Any]) -> str:
    """Canonical one-line JSON form of an export (JSONL row)."""
    return json.dumps(doc, separators=(",", ":"), sort_keys=False)
