"""Fixed-width table and series printers for the benchmark harness.

Every bench regenerates a paper artifact and prints it in a stable,
grep-friendly format so EXPERIMENTS.md can quote the output directly.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from .series import Series


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width table with a title rule."""
    materialised: List[List[str]] = [[_cell(value) for value in row]
                                     for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, x_label: str, series_list: Sequence[Series],
                  precision: int = 3) -> str:
    """Render aligned series (one column per line of a figure)."""
    headers = [x_label] + [s.name for s in series_list]
    xs = sorted({x for s in series_list for x in s.xs()})
    rows = []
    for x in xs:
        row: List[object] = [x]
        for s in series_list:
            match = [p for p in s.points if p.x == x]
            if match and match[0].n:
                row.append(f"{match[0].mean:.{precision}f}"
                           + (f" ±{match[0].ci95:.{precision}f}"
                              if match[0].n > 1 else ""))
            else:
                row.append("—")      # no sample at this x for this series
        rows.append(row)
    return format_table(title, headers, rows)


def format_recovery(title: str, summaries: Sequence[dict],
                    labels: Optional[Sequence[str]] = None) -> str:
    """Render resilience recovery summaries, one row per run.

    ``summaries`` are :meth:`TransferResult.recovery_summary` dicts;
    ``labels`` names each row (defaults to the row index).
    """
    if not summaries:
        return format_table(title, ["run"], [])
    keys = list(summaries[0].keys())
    if labels is None:
        labels = [str(i) for i in range(len(summaries))]
    rows = [[label] + [_cell_or_dash(summary.get(key)) for key in keys]
            for label, summary in zip(labels, summaries)]
    return format_table(title, ["run"] + keys, rows)


def _cell_or_dash(value: object) -> str:
    # None and nan are the same story told by different layers ("no
    # measurement exists"): a never-resynced run's time_to_resync is
    # None, a zero-packet link's loss_fraction is nan.  Both render as
    # the em-dash _cell already uses for nan.
    return "—" if value is None else _cell(value)


def _cell(value: object) -> str:
    if isinstance(value, float):
        # nan means "not measurable" (e.g. the σ of one sample) — an
        # em-dash reads unambiguously where "nan" looks like a bug.
        if math.isnan(value):
            return "—"
        return f"{value:.3f}"
    return str(value)


# ---------------------------------------------------------------------------
# telemetry rendering (repro timeline)
# ---------------------------------------------------------------------------

_CHART_GLYPHS = " .:-=+*#%@"


def format_timeseries(name: str, times: Sequence[float],
                      values: Sequence[Optional[float]],
                      width: int = 64, height: int = 8) -> str:
    """Render one telemetry time series as an ASCII chart.

    ``values`` is one aligned series from a ``telemetry/v1`` export
    (``None``/nan marks ticks where the gauge did not exist yet).
    Samples are bucketed into ``width`` columns (bucket mean), scaled
    into ``height`` rows, and plotted densest-glyph-at-the-value so the
    trajectory survives a plain-text terminal, a log file, and a diff.
    """
    points = [(t, float(v)) for t, v in zip(times, values)
              if v is not None and not math.isnan(float(v))]
    header = name
    if not points:
        return f"{header}\n  (no samples)"
    t_lo, t_hi = points[0][0], points[-1][0]
    span = (t_hi - t_lo) or 1.0
    # Fewer samples than columns would leave gaps; shrink to fit.
    width = max(8, min(width, len(points)))
    columns: List[List[float]] = [[] for _ in range(width)]
    for t, v in points:
        index = min(width - 1, int((t - t_lo) / span * width))
        columns[index].append(v)
    col_means = [sum(c) / len(c) if c else math.nan for c in columns]
    finite = [v for v in col_means if not math.isnan(v)]
    v_lo, v_hi = min(finite), max(finite)
    v_span = (v_hi - v_lo) or 1.0
    label_w = max(len(_axis_label(v_lo)), len(_axis_label(v_hi)))

    grid = [[" "] * width for _ in range(height)]
    for x, v in enumerate(col_means):
        if math.isnan(v):
            continue
        # Row 0 is the top; fill from the value down so area reads as
        # magnitude.
        level = (v - v_lo) / v_span
        row = height - 1 - min(height - 1, int(level * height))
        grid[row][x] = _CHART_GLYPHS[-1]
        for below in range(row + 1, height):
            grid[below][x] = _CHART_GLYPHS[2]

    last = points[-1][1]
    lines = [f"{header}   [min {_axis_label(v_lo)}  max {_axis_label(v_hi)}"
             f"  last {_axis_label(last)}]"]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = _axis_label(v_hi)
        elif row_index == height - 1:
            label = _axis_label(v_lo)
        else:
            label = ""
        lines.append(f"  {label.rjust(label_w)} |{''.join(row)}")
    axis = f"  {' ' * label_w} +{'-' * width}"
    lines.append(axis)
    lines.append(f"  {' ' * label_w}  {_axis_label(t_lo)}"
                 f"{_axis_label(t_hi).rjust(width - len(_axis_label(t_lo)))}"
                 "  (sim seconds)")
    return "\n".join(lines)


def _axis_label(value: float) -> str:
    if value == int(value) and abs(value) < 1e7:
        return str(int(value))
    if abs(value) >= 1000:
        return f"{value:.0f}"
    return f"{value:.3g}"


def format_flight_recorder(events: Sequence[Dict[str, object]],
                           title: str = "Flight recorder") -> str:
    """Render a flight-recorder dump (telemetry/v1 ``flight_recorder``)."""
    rows = []
    for event in events:
        detail = event.get("detail") or {}
        kv = " ".join(f"{k}={v}" for k, v in detail.items())
        rows.append([f"{float(event['time']):.6f}",
                     str(event["source"]), str(event["event"]), kv])
    return format_table(title, ["time", "source", "event", "detail"], rows)
