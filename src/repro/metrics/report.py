"""Fixed-width table and series printers for the benchmark harness.

Every bench regenerates a paper artifact and prints it in a stable,
grep-friendly format so EXPERIMENTS.md can quote the output directly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .series import Series


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width table with a title rule."""
    materialised: List[List[str]] = [[_cell(value) for value in row]
                                     for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, x_label: str, series_list: Sequence[Series],
                  precision: int = 3) -> str:
    """Render aligned series (one column per line of a figure)."""
    headers = [x_label] + [s.name for s in series_list]
    xs = sorted({x for s in series_list for x in s.xs()})
    rows = []
    for x in xs:
        row: List[object] = [x]
        for s in series_list:
            match = [p for p in s.points if p.x == x]
            if match and match[0].n:
                row.append(f"{match[0].mean:.{precision}f}"
                           + (f" ±{match[0].ci95:.{precision}f}"
                              if match[0].n > 1 else ""))
            else:
                row.append("-")
        rows.append(row)
    return format_table(title, headers, rows)


def format_recovery(title: str, summaries: Sequence[dict],
                    labels: Optional[Sequence[str]] = None) -> str:
    """Render resilience recovery summaries, one row per run.

    ``summaries`` are :meth:`TransferResult.recovery_summary` dicts;
    ``labels`` names each row (defaults to the row index).
    """
    if not summaries:
        return format_table(title, ["run"], [])
    keys = list(summaries[0].keys())
    if labels is None:
        labels = [str(i) for i in range(len(summaries))]
    rows = [[label] + [_cell_or_dash(summary.get(key)) for key in keys]
            for label, summary in zip(labels, summaries)]
    return format_table(title, ["run"] + keys, rows)


def _cell_or_dash(value: object) -> str:
    return "-" if value is None else _cell(value)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
