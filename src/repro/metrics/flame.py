"""Flame-graph aggregation over spans/v1 exports.

Folds every span onto its name-stack (root span name -> ... -> its own
name) and accumulates **self** weight — the span's weight minus its
children's — so a node's **total** (self + descendants) matches the
usual flame-graph semantics.  Three weights:

* ``wall``  — host-clock self time (``perf_counter``), the profiling view;
* ``sim``   — simulated seconds, the model view (link transits dominate);
* ``count`` — one per span, the shape view.

Rendered as an indented ASCII tree (``repro flame``) and as
folded-stacks lines (``a;b;c <weight>``) consumable by external
flamegraph tooling (e.g. Brendan Gregg's ``flamegraph.pl`` or speedscope).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

WEIGHTS = ("wall", "sim", "count")


class FlameNode:
    """One stack frame in the aggregated tree."""

    __slots__ = ("name", "count", "self_weight", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.self_weight = 0.0
        self.children: Dict[str, "FlameNode"] = {}

    def child(self, name: str) -> "FlameNode":
        node = self.children.get(name)
        if node is None:
            node = FlameNode(name)
            self.children[name] = node
        return node

    @property
    def total(self) -> float:
        return self.self_weight + sum(c.total for c in self.children.values())


def _span_weight(span: Dict[str, Any], weight: str) -> float:
    if weight == "count":
        return 1.0
    if weight == "wall":
        return float(span.get("wall") or 0.0)
    end = span.get("end")
    if end is None:
        return 0.0
    return max(0.0, end - span["start"])


def build_flame(doc: Dict[str, Any], weight: str = "wall") -> FlameNode:
    """Aggregate a spans/v1 export into a flame tree rooted at "all"."""
    if weight not in WEIGHTS:
        raise ValueError(f"weight must be one of {WEIGHTS}, got {weight!r}")
    spans: List[Dict[str, Any]] = doc["spans"]
    by_id: Dict[Tuple[int, int], Dict[str, Any]] = {
        (s["trace"], s["span"]): s for s in spans}
    child_sum: Dict[Tuple[int, int], float] = {}
    if weight != "count":
        for span in spans:
            parent = span["parent"]
            if parent is not None:
                key = (span["trace"], parent)
                child_sum[key] = (child_sum.get(key, 0.0)
                                  + _span_weight(span, weight))
    root = FlameNode("all")
    for span in spans:
        # Name stack from the trace root down to this span.
        path: List[str] = []
        cur: Optional[Dict[str, Any]] = span
        while cur is not None:
            path.append(cur["name"])
            parent = cur["parent"]
            cur = by_id.get((cur["trace"], parent)) if parent is not None else None
        path.reverse()
        node = root
        for name in path:
            node = node.child(name)
        node.count += 1
        if weight == "count":
            node.self_weight += 1.0
        else:
            own = _span_weight(span, weight)
            kids = child_sum.get((span["trace"], span["span"]), 0.0)
            node.self_weight += max(0.0, own - kids)
    return root


def _fmt_weight(value: float, weight: str) -> str:
    if weight == "count":
        return f"{int(value)}"
    return f"{value * 1e3:10.3f}ms"


def format_flame(root: FlameNode, weight: str = "wall",
                 max_depth: Optional[int] = None,
                 min_fraction: float = 0.0) -> List[str]:
    """Indented tree, children sorted by total weight, heaviest first."""
    grand = root.total or 1.0
    lines = [f"flame (weight={weight}, total {_fmt_weight(root.total, weight).strip()}, "
             f"{sum(c.count for c in root.children.values())} root spans)"]
    lines.append(f"{'stack':<44} {'n':>7} {'total':>12} {'self':>12} {'tot%':>6}")

    def walk(node: FlameNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        total = node.total
        if total / grand < min_fraction:
            return
        label = ("  " * depth + node.name)[:44]
        lines.append(f"{label:<44} {node.count:>7} "
                     f"{_fmt_weight(total, weight):>12} "
                     f"{_fmt_weight(node.self_weight, weight):>12} "
                     f"{100.0 * total / grand:>5.1f}%")
        for child in sorted(node.children.values(),
                            key=lambda c: -c.total):
            walk(child, depth + 1)

    for child in sorted(root.children.values(), key=lambda c: -c.total):
        walk(child, 0)
    return lines


def to_folded(root: FlameNode, weight: str = "wall") -> List[str]:
    """Folded-stacks lines: ``name;name;name <int-weight>``.

    Wall/sim weights are emitted in microseconds so they stay integral
    (the folded format expects integer sample counts).
    """
    scale = 1.0 if weight == "count" else 1e6
    lines: List[str] = []

    def walk(node: FlameNode, prefix: str) -> None:
        stack = f"{prefix};{node.name}" if prefix else node.name
        value = int(round(node.self_weight * scale))
        if value > 0:
            lines.append(f"{stack} {value}")
        for child in sorted(node.children.values(), key=lambda c: c.name):
            walk(child, stack)

    for child in sorted(root.children.values(), key=lambda c: c.name):
        walk(child, "")
    return lines
