"""Run-level metrics: everything the paper's figures are computed from.

A :class:`TransferResult` snapshots one end-to-end retrieval —
client-side outcome, bottleneck-link accounting, gateway accounting —
and derives the paper's three headline metrics:

* bytes sent on the constrained link (Fig. 10 numerator);
* download time (Fig. 11 numerator);
* perceived packet loss rate (Fig. 13): channel losses *plus* packets
  the decoder had to drop as undecodable, over packets offered.

When the resilience layer is armed the result additionally snapshots
both gateways' :class:`~repro.gateway.resilience.ResilienceStats`
(time-to-resync, degraded-mode packets, watchdog trips, heartbeat
state) — see :meth:`TransferResult.recovery_summary`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from ..app.transfer import TransferOutcome
from ..gateway.middlebox import GatewayStats
from ..gateway.resilience import ResilienceStats
from ..sim.link import LinkStats


@dataclass
class TransferResult:
    """Everything measured from a single transfer run."""

    outcome: TransferOutcome
    bottleneck_forward: LinkStats
    bottleneck_reverse: LinkStats
    encoder_stats: Optional[GatewayStats] = None
    decoder_stats: Optional[GatewayStats] = None
    encoder_resilience: Optional[ResilienceStats] = None
    decoder_resilience: Optional[ResilienceStats] = None
    sim_time: float = 0.0
    dre_enabled: bool = False
    policy: str = "none"
    seed: int = 0
    server_retransmissions: int = 0
    server_timeouts: int = 0
    avg_data_packet_size: float = 0.0
    data_packets_sent: int = 0
    #: Stage timing breakdown (see repro.metrics.profiling), populated
    #: when the run was configured with ``profile=True``.
    profile: Optional[Dict[str, Dict[str, float]]] = None
    #: telemetry/v1 export (see repro.metrics.telemetry), populated when
    #: the run was configured with ``telemetry=True``.  Kept as a plain
    #: JSON-shaped dict so to_dict/from_dict round-trip it untouched
    #: through the sweep result cache.
    telemetry: Optional[Dict[str, Any]] = None
    #: spans/v1 causal-trace export (see repro.metrics.spans), populated
    #: when the run was configured with ``spans=True``.  Same plain-dict
    #: round-trip contract as ``telemetry``.
    spans: Optional[Dict[str, Any]] = None

    # -- headline metrics --------------------------------------------------

    @property
    def completed(self) -> bool:
        return self.outcome.completed

    @property
    def stalled(self) -> bool:
        return self.outcome.stalled or not self.outcome.completed

    @property
    def fraction_retrieved(self) -> float:
        return self.outcome.fraction_retrieved

    @property
    def bytes_on_link(self) -> int:
        """Bytes offered to the constrained link, both directions.

        Retransmissions count — that is the point: aggressive encoding
        that triggers retransmission storms shows up here.
        """
        return (self.bottleneck_forward.bytes_offered
                + self.bottleneck_reverse.bytes_offered)

    @property
    def forward_bytes_on_link(self) -> int:
        return self.bottleneck_forward.bytes_offered

    @property
    def download_time(self) -> Optional[float]:
        return self.outcome.duration

    @property
    def perceived_loss_rate(self) -> float:
        """Channel loss + undecodable drops, over data packets offered.

        For a no-DRE run this reduces to the channel loss fraction.
        """
        if self.encoder_stats is None or self.decoder_stats is None:
            return self.bottleneck_forward.loss_fraction
        offered = self.encoder_stats.data_packets
        if offered == 0:
            return 0.0
        delivered = self.decoder_stats.decoded_ok
        return max(0.0, 1.0 - delivered / offered)

    @property
    def undecodable_drops(self) -> int:
        if self.decoder_stats is None:
            return 0
        return self.decoder_stats.dropped_total

    # -- recovery metrics (resilience layer) -------------------------------

    @property
    def resyncs_completed(self) -> int:
        if self.decoder_resilience is None:
            return 0
        return self.decoder_resilience.resyncs_completed

    @property
    def time_to_resync(self) -> Optional[float]:
        """Mean seconds from divergence detection to acknowledged resync."""
        if self.decoder_resilience is None:
            return None
        return self.decoder_resilience.time_to_resync

    @property
    def degraded_packets(self) -> int:
        """Data packets the encoder forwarded unencoded while its peer
        was unresponsive (zero compression instead of a stall)."""
        if self.encoder_resilience is None:
            return 0
        return self.encoder_resilience.degraded_packets

    @property
    def watchdog_trips(self) -> int:
        if self.decoder_resilience is None:
            return 0
        return self.decoder_resilience.watchdog_trips

    def recovery_summary(self) -> Optional[dict]:
        """Recovery metrics as one flat dict (None when the layer is off).

        Rendered by :func:`repro.metrics.report.format_recovery`.
        """
        if self.encoder_resilience is None and self.decoder_resilience is None:
            return None
        enc = self.encoder_resilience or ResilienceStats()
        dec = self.decoder_resilience or ResilienceStats()
        return {
            # nan on a zero-packet link (a partition that never lifted);
            # format_recovery renders it as an em-dash.
            "link_loss": self.bottleneck_forward.loss_fraction,
            "resyncs_completed": dec.resyncs_completed,
            "resyncs_initiated": dec.resyncs_initiated,
            "resync_retries": dec.resync_retries,
            "time_to_resync": dec.time_to_resync,
            "watchdog_trips": dec.watchdog_trips,
            "epoch_mismatch_dropped": dec.epoch_mismatch_dropped,
            "desync_dropped": dec.desync_dropped,
            "degraded_packets": enc.degraded_packets,
            "degraded_time": enc.degraded_time,
            "heartbeat_state": "degraded" if enc.degraded else "ok",
            "heartbeats_sent": enc.heartbeats_sent,
        }

    # -- serialisation (sweep result cache) --------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-friendly form (all leaves are plain scalars).

        The sweep engine's on-disk result cache stores exactly this;
        :meth:`from_dict` reconstructs an equal ``TransferResult``, so a
        cache hit is bit-identical to re-running the simulation.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TransferResult":
        """Inverse of :meth:`to_dict`."""
        def opt(klass, value):
            return klass(**value) if value is not None else None

        fields = dict(data)
        fields["outcome"] = TransferOutcome(**fields["outcome"])
        fields["bottleneck_forward"] = LinkStats(**fields["bottleneck_forward"])
        fields["bottleneck_reverse"] = LinkStats(**fields["bottleneck_reverse"])
        fields["encoder_stats"] = opt(GatewayStats, fields.get("encoder_stats"))
        fields["decoder_stats"] = opt(GatewayStats, fields.get("decoder_stats"))
        fields["encoder_resilience"] = opt(ResilienceStats,
                                           fields.get("encoder_resilience"))
        fields["decoder_resilience"] = opt(ResilienceStats,
                                           fields.get("decoder_resilience"))
        return cls(**fields)


@dataclass
class RatioPoint:
    """Paired DRE / no-DRE measurement at one sweep coordinate.

    The paper's Figs. 10–12 plot exactly these ratios:
    ``value_with_DRE / value_without_DRE``.
    """

    x: float
    bytes_ratio: float
    delay_ratio: Optional[float]
    dre: TransferResult = field(repr=False, default=None)  # type: ignore[assignment]
    baseline: TransferResult = field(repr=False, default=None)  # type: ignore[assignment]

    @classmethod
    def from_results(cls, x: float, dre: TransferResult,
                     baseline: TransferResult) -> "RatioPoint":
        bytes_ratio = (dre.forward_bytes_on_link
                       / max(1, baseline.forward_bytes_on_link))
        if dre.download_time is not None and baseline.download_time:
            delay_ratio: Optional[float] = (dre.download_time
                                            / baseline.download_time)
        else:
            delay_ratio = None
        return cls(x=x, bytes_ratio=bytes_ratio, delay_ratio=delay_ratio,
                   dre=dre, baseline=baseline)
