"""Sweep aggregation: mean/σ/CI over seeds for figure series."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence


@dataclass
class Aggregate:
    """Summary statistics of one sweep coordinate."""

    x: float
    values: List[float] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            return math.nan
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        """Sample standard deviation; nan when n < 2.

        A single sample carries *no* spread information — reporting 0.0
        would read as "measured, no uncertainty", which is the opposite
        of the truth.  Report printers render the nan as ``—``.
        """
        if len(self.values) < 2:
            return math.nan
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values)
                         / (len(self.values) - 1))

    @property
    def stderr(self) -> float:
        if len(self.values) < 2:
            return math.nan
        return self.std / math.sqrt(len(self.values))

    @property
    def ci95(self) -> float:
        """Half-width of a ~95 % normal-approximation CI."""
        return 1.96 * self.stderr

    def add(self, value: Optional[float]) -> None:
        if value is not None and not math.isnan(value):
            self.values.append(float(value))


@dataclass
class Series:
    """A named sequence of aggregates (one figure line)."""

    name: str
    points: List[Aggregate] = field(default_factory=list)

    def point(self, x: float) -> Aggregate:
        for aggregate in self.points:
            if aggregate.x == x:
                return aggregate
        aggregate = Aggregate(x=x)
        self.points.append(aggregate)
        return aggregate

    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    def means(self) -> List[float]:
        return [p.mean for p in self.points]


def sweep(xs: Sequence[float], seeds: Iterable[int],
          run: Callable[[float, int], Optional[float]],
          name: str = "series") -> Series:
    """Run ``run(x, seed)`` over the cross product and aggregate.

    ``run`` returning ``None`` (e.g. a stalled transfer with no delay)
    is skipped in the aggregate but the attempt still counts nowhere —
    callers that care about failure rates track them separately.
    """
    series = Series(name=name)
    seed_list = list(seeds)
    for x in xs:
        aggregate = series.point(x)
        for seed in seed_list:
            aggregate.add(run(x, seed))
    return series
