"""Per-stage wall-clock profiling of the simulation hot path.

A :class:`StageProfiler` accumulates (total seconds, call count) per
named stage.  The instrumented code — the encoder/decoder
(``batch_fingerprint``, ``fingerprint``, ``table_probe``,
``region_expand``, ``wire_pack``, ``cache_ops``), the flow-shard
recombiner (``merge``) and the simulator run loop
(``event_dispatch``) — holds an optional profiler reference:
when it is ``None`` (the default) each hook costs one attribute load
and an identity check, so profiling is effectively free when off.

Enable it per run with ``ExperimentConfig(profile=True)``; the result
lands in :attr:`repro.metrics.collectors.TransferResult.profile` and in
``benchmarks/bench_hotpath.py``'s stage breakdown.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterator, Optional, Tuple

#: Canonical stage names, in pipeline order (unknown stages are allowed;
#: these are the ones the built-in instrumentation emits).
#: ``batch_fingerprint`` is the vectorised whole-window sweep of
#: ``encode_batch``; ``fingerprint`` the per-packet path; ``merge`` the
#: deterministic recombination of flow-sharded results.
STAGES = ("batch_fingerprint", "fingerprint", "table_probe",
          "region_expand", "wire_pack", "cache_ops", "merge",
          "event_dispatch")


class StageProfiler:
    """Accumulates per-stage wall-clock time and call counts."""

    __slots__ = ("totals", "counts")

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def add(self, stage: str, elapsed: float) -> None:
        """Record one timed section of ``stage``."""
        totals = self.totals
        if stage in totals:
            totals[stage] += elapsed
            self.counts[stage] += 1
        else:
            totals[stage] = elapsed
            self.counts[stage] = 1

    def time(self, stage: str) -> "_StageTimer":
        """Context manager timing a block (for non-hot-path callers)."""
        return _StageTimer(self, stage)

    def merge(self, other: "StageProfiler") -> None:
        """Fold another profiler's accumulations into this one."""
        for stage, total in other.totals.items():
            if stage in self.totals:
                self.totals[stage] += total
                self.counts[stage] += other.counts[stage]
            else:
                self.totals[stage] = total
                self.counts[stage] = other.counts[stage]

    def total(self, stage: str) -> float:
        return self.totals.get(stage, 0.0)

    def count(self, stage: str) -> int:
        return self.counts.get(stage, 0)

    def stages(self) -> Iterator[Tuple[str, float, int]]:
        """(stage, total seconds, calls), canonical stages first."""
        seen = set()
        for stage in STAGES:
            if stage in self.totals:
                seen.add(stage)
                yield stage, self.totals[stage], self.counts[stage]
        for stage in sorted(self.totals):
            if stage not in seen:
                yield stage, self.totals[stage], self.counts[stage]

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly snapshot: stage -> {seconds, calls}."""
        return {stage: {"seconds": total, "calls": float(calls)}
                for stage, total, calls in self.stages()}

    def report(self) -> str:
        """Small fixed-width table of the stage breakdown."""
        lines = [f"{'stage':<16} {'seconds':>10} {'calls':>10} {'us/call':>10}"]
        for stage, total, calls in self.stages():
            per_call = total / calls * 1e6 if calls else 0.0
            lines.append(f"{stage:<16} {total:>10.4f} {calls:>10d} "
                         f"{per_call:>10.2f}")
        return "\n".join(lines)


class _StageTimer:
    """Context manager produced by :meth:`StageProfiler.time`."""

    __slots__ = ("_profiler", "_stage", "_started")

    def __init__(self, profiler: StageProfiler, stage: str):
        self._profiler = profiler
        self._stage = stage
        self._started = 0.0

    def __enter__(self) -> "_StageTimer":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profiler.add(self._stage, perf_counter() - self._started)


def profiler_if(enabled: bool) -> Optional[StageProfiler]:
    """``StageProfiler()`` when enabled, else ``None`` (the fast path)."""
    return StageProfiler() if enabled else None
