"""Causal span tracing: walk a receiver-side stall back to its cause.

The telemetry layer (PR 3) answers *how much* — gauges, counters,
flight-recorder rings.  This layer answers *why this packet*: every
sampled data packet gets a **trace**, and every causal unit it passes
through — gateway encode (with table-probe / region-expand / wire-pack
stage children), link transit, gateway decode/reconstruct — gets a
**span** inside that trace, parented to the span that caused it.
Control-plane units (resync handshakes, watchdog trips, TCP
retransmissions) get traces of their own, connected to the data-plane
traces through cross-trace ``links``:

* ``encoded_against`` — an encode span links to the trace of each
  cache entry the encoder referenced (the paper's causal arrow: a
  region match *here* creates a decode dependency *there*);
* ``retransmission_of`` — a TCP retransmit event links back to the
  trace of the packet that first carried this sequence number;
* ``caused_by_retransmit`` — the re-encoded packet's trace links back
  to the retransmit decision that spawned it.

Together these make the §IV-B livelock mechanically walkable: decode
drops MISSING → same-trace encode span → ``encoded_against`` → the
dependency's trace ends in a lost link transit — and its root carries
the *same* TCP sequence number, i.e. the retransmission was encoded
against a stale copy of itself (see :func:`format_chain`).

Contract (same as PR 3 telemetry): producers hold a duck-typed
``spans`` attribute, ``None`` by default; the disabled path costs one
attribute load and an ``is not None`` check.  ``trace_sample=N``
samples every Nth *flow* (control-plane units are always sampled) so
the layer scales to multiflow runs.  Wall-clock self-times come from
``perf_counter`` — permitted by the determinism lint because they feed
profiling output, never simulation results; simulation timestamps come
from the injected ``sim`` clock and stay deterministic.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

SPANS_SCHEMA = "spans/v1"

#: Recorder methods that allocate a span.  The architecture lint's
#: hotpath family forbids calling any of these inside an inner batch
#: loop of a registered hot function (see analysis/rules/hotpath.py).
SPAN_CREATION_METHODS = frozenset([
    "begin", "open", "event", "child_event", "begin_stage",
    "packet_begin", "packet_event", "link_begin", "note_retransmit",
])


class Span:
    """One timed causal unit inside a trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "source",
                 "start", "end", "wall", "tags", "links", "_wall0")

    def __init__(self, trace_id: int, span_id: int, parent_id: Optional[int],
                 name: str, source: str, start: float) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.source = source
        self.start = start
        self.end: Optional[float] = None
        self.wall: float = 0.0
        self.tags: Dict[str, Any] = {}
        self.links: List[Dict[str, Any]] = []
        self._wall0 = perf_counter()

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "source": self.source,
            "start": self.start,
            "end": self.end,
            "wall": self.wall,
            "tags": self.tags,
        }
        if self.links:
            doc["links"] = self.links
        return doc


class SpanRecorder:
    """Collects spans for sampled flows; bounded, append-only.

    All methods are no-ops (returning ``None``) for packets whose flow
    was not sampled or once ``max_spans`` is reached — call sites never
    need to distinguish the cases, they just pass the returned handle
    back to the matching ``end``.
    """

    def __init__(self, sim: Any = None, trace_sample: int = 1,
                 max_spans: int = 50_000) -> None:
        self.sim = sim
        self.trace_sample = max(1, int(trace_sample))
        self.max_spans = int(max_spans)
        self.spans: List[Span] = []
        self.traces = 0
        self.dropped = 0
        self._next_span = 0
        # Synchronous context stack: packet_begin/begin push, end pops.
        # Stage sub-spans attach to the top, so the core codec never
        # needs to know trace ids.
        self._stack: List[Span] = []
        # packet_id -> most recent span in that packet's trace; how a
        # trace id crosses the gateway -> link -> gateway boundary
        # without touching the packet objects.
        self._pkt: Dict[int, Span] = {}
        self._open_links: Dict[int, Span] = {}
        self._flow_sampled: Dict[Any, bool] = {}
        self._flow_seen = 0
        # (flow, seq) -> first span that carried this segment / the
        # pending retransmit decision for it.
        self._seq_origin: Dict[Any, Span] = {}
        self._retx: Dict[Any, Span] = {}
        self._faults: List[str] = []

    # -- internals ---------------------------------------------------------

    def _now(self) -> float:
        sim = self.sim
        return 0.0 if sim is None else sim.now

    def _full(self) -> bool:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return True
        return False

    def _alloc(self, name: str, source: str, trace_id: int,
               parent_id: Optional[int]) -> Span:
        self._next_span += 1
        span = Span(trace_id, self._next_span, parent_id, name, source,
                    self._now())
        if self._faults:
            span.tags["faults"] = list(self._faults)
        self.spans.append(span)
        return span

    def _new_trace(self) -> int:
        self.traces += 1
        return self.traces

    def sampled(self, flow: Any) -> bool:
        """Deterministic per-flow sampling: every Nth new flow."""
        if flow is None:
            return True
        hit = self._flow_sampled.get(flow)
        if hit is None:
            hit = (self._flow_seen % self.trace_sample) == 0
            self._flow_seen += 1
            self._flow_sampled[flow] = hit
        return hit

    # -- synchronous scopes (same-event begin/end) -------------------------

    def begin(self, name: str, source: str, **tags: Any) -> Optional[Span]:
        """Open a span and push it as the current context.

        Child of the current context if one is active, else the root
        of a fresh (always-sampled) trace.  Must be closed with
        :meth:`end` within the same simulator event.
        """
        if self._full():
            return None
        if self._stack:
            top = self._stack[-1]
            span = self._alloc(name, source, top.trace_id, top.span_id)
        else:
            span = self._alloc(name, source, self._new_trace(), None)
        if tags:
            span.tags.update(tags)
        self._stack.append(span)
        return span

    def begin_stage(self, name: str, source: str, **tags: Any) -> Optional[Span]:
        """Like :meth:`begin` but only when a context is already active.

        The codec cores call this: with no enclosing packet span (flow
        unsampled, or the core driven directly by a benchmark) it
        records nothing rather than minting orphan traces per packet.
        """
        if not self._stack or self._full():
            return None
        top = self._stack[-1]
        span = self._alloc(name, source, top.trace_id, top.span_id)
        if tags:
            span.tags.update(tags)
        self._stack.append(span)
        return span

    def end(self, span: Optional[Span], **tags: Any) -> None:
        if span is None:
            return
        span.end = self._now()
        span.wall = perf_counter() - span._wall0
        if tags:
            span.tags.update(tags)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def end_stage(self, span: Optional[Span], **tags: Any) -> None:
        self.end(span, **tags)

    # -- asynchronous scopes (multi-event units, e.g. a resync) ------------

    def open(self, name: str, source: str, parent: Optional[Span] = None,
             **tags: Any) -> Optional[Span]:
        """Open a span that stays live across simulator events.

        Not pushed on the context stack; the caller holds the handle
        and closes it with :meth:`end` when the unit completes.
        """
        if self._full():
            return None
        if parent is not None:
            span = self._alloc(name, source, parent.trace_id, parent.span_id)
        else:
            span = self._alloc(name, source, self._new_trace(), None)
        if tags:
            span.tags.update(tags)
        return span

    def event(self, name: str, source: str, **tags: Any) -> Optional[Span]:
        """Zero-duration span: child of the active context, else a root."""
        if self._full():
            return None
        if self._stack:
            top = self._stack[-1]
            span = self._alloc(name, source, top.trace_id, top.span_id)
        else:
            span = self._alloc(name, source, self._new_trace(), None)
        span.end = span.start
        if tags:
            span.tags.update(tags)
        return span

    def child_event(self, parent: Optional[Span], name: str, source: str,
                    **tags: Any) -> Optional[Span]:
        """Zero-duration span under an explicitly held parent."""
        if parent is None or self._full():
            return None
        span = self._alloc(name, source, parent.trace_id, parent.span_id)
        span.end = span.start
        if tags:
            span.tags.update(tags)
        return span

    # -- packet plumbing (trace propagation across hops) -------------------

    def packet_begin(self, name: str, source: str, packet_id: int,
                     flow: Any = None, seq: Optional[int] = None,
                     **tags: Any) -> Optional[Span]:
        """Open a packet-scoped span and push it as the context.

        Continues the packet's existing trace when one is known (the
        decode side of a hop), else roots a new trace subject to flow
        sampling.  A fresh root inherits any pending retransmit
        decision for (flow, seq) as a ``caused_by_retransmit`` link.
        """
        prior = self._pkt.get(packet_id)
        if prior is not None:
            if self._full():
                return None
            span = self._alloc(name, source, prior.trace_id, prior.span_id)
        else:
            if not self.sampled(flow) or self._full():
                return None
            span = self._alloc(name, source, self._new_trace(), None)
        span.tags["packet"] = packet_id
        if flow is not None:
            span.tags["flow"] = list(flow)
        if seq is not None:
            span.tags["seq"] = seq
            key = (flow, seq)
            if key not in self._seq_origin:
                self._seq_origin[key] = span
            retx = self._retx.pop(key, None)
            if retx is not None:
                span.links.append({"ref": "caused_by_retransmit",
                                   "trace": retx.trace_id,
                                   "span": retx.span_id})
        if tags:
            span.tags.update(tags)
        self._pkt[packet_id] = span
        self._stack.append(span)
        return span

    def packet_end(self, span: Optional[Span], **tags: Any) -> None:
        self.end(span, **tags)

    def packet_event(self, name: str, source: str, packet_id: int,
                     **tags: Any) -> Optional[Span]:
        """Zero-duration span appended to a packet's trace (if traced)."""
        ctx = self._pkt.get(packet_id)
        if ctx is None or self._full():
            return None
        span = self._alloc(name, source, ctx.trace_id, ctx.span_id)
        span.end = span.start
        span.tags["packet"] = packet_id
        if tags:
            span.tags.update(tags)
        return span

    def link_deps(self, span: Optional[Span],
                  dep_packet_ids: Iterable[int]) -> None:
        """Record ``encoded_against`` links to the dependencies' traces."""
        if span is None:
            return
        pkt = self._pkt
        links = []
        for dep in dep_packet_ids:
            target = pkt.get(dep)
            if target is not None:
                links.append({"ref": "encoded_against",
                              "trace": target.trace_id,
                              "span": target.span_id,
                              "packet": dep})
        # Dependencies arrive as a set of process-global packet ids;
        # order by trace so the export replays bit-identically.
        links.sort(key=lambda link: (link["trace"], link["span"]))
        span.links.extend(links)

    # -- link transit ------------------------------------------------------

    def link_begin(self, source: str, packet_id: int,
                   **tags: Any) -> Optional[Span]:
        """Open a transit span when a traced packet enters a link."""
        ctx = self._pkt.get(packet_id)
        if ctx is None or self._full():
            return None
        span = self._alloc("link_transit", source, ctx.trace_id, ctx.span_id)
        span.tags["packet"] = packet_id
        if tags:
            span.tags.update(tags)
        self._open_links[packet_id] = span
        self._pkt[packet_id] = span
        return span

    def link_annotate(self, packet_id: int, **tags: Any) -> None:
        span = self._open_links.get(packet_id)
        if span is not None:
            span.tags.update(tags)

    def link_end(self, packet_id: int, outcome: str,
                 **tags: Any) -> Optional[Span]:
        """Close the packet's open transit span with an outcome tag."""
        span = self._open_links.pop(packet_id, None)
        if span is None:
            return None
        span.end = self._now()
        span.wall = perf_counter() - span._wall0
        span.tags["outcome"] = outcome
        if tags:
            span.tags.update(tags)
        return span

    # -- control plane -----------------------------------------------------

    def note_retransmit(self, source: str, flow: Any, seq: int,
                        **tags: Any) -> Optional[Span]:
        """Record a TCP retransmit decision as its own small trace.

        Links back to the first traced packet that carried this
        sequence number; the next packet traced with the same
        (flow, seq) links forward to this span, closing the causal
        chain stall -> retransmit -> re-encode.
        """
        if not self.sampled(flow) or self._full():
            return None
        span = self._alloc("tcp_retransmit", source, self._new_trace(), None)
        span.end = span.start
        if flow is not None:
            span.tags["flow"] = list(flow)
        span.tags["seq"] = seq
        if tags:
            span.tags.update(tags)
        key = (flow, seq)
        origin = self._seq_origin.get(key)
        if origin is not None:
            span.links.append({"ref": "retransmission_of",
                               "trace": origin.trace_id,
                               "span": origin.span_id})
        self._retx[key] = span
        return span

    def fault_begin(self, name: str) -> None:
        """Mark an injected-fault window: spans created while any
        window is active carry a ``faults`` tag."""
        self._faults.append(name)

    def fault_end(self, name: str) -> None:
        try:
            self._faults.remove(name)
        except ValueError:
            pass

    # -- introspection -----------------------------------------------------

    def current_ids(self) -> Tuple[Optional[int], Optional[int]]:
        """(trace_id, span_id) of the active context, or (None, None)."""
        if self._stack:
            top = self._stack[-1]
            return (top.trace_id, top.span_id)
        return (None, None)

    def ids_for_packet(self, packet_id: int
                       ) -> Tuple[Optional[int], Optional[int]]:
        span = self._pkt.get(packet_id)
        if span is None:
            return (None, None)
        return (span.trace_id, span.span_id)

    # -- export ------------------------------------------------------------

    def export(self) -> Dict[str, Any]:
        """The full spans/v1 document (JSON-shaped, schema-stamped)."""
        open_spans = 0
        for span in self.spans:
            if span.end is None:
                open_spans += 1
        return {
            "schema": SPANS_SCHEMA,
            "trace_sample": self.trace_sample,
            "summary": {
                "spans": len(self.spans),
                "traces": self.traces,
                "dropped": self.dropped,
                "open": open_spans,
            },
            "spans": [span.to_dict() for span in self.spans],
        }

    def to_jsonl(self, path: str) -> None:
        """One span per line; first line is the schema header."""
        doc = self.export()
        with open(path, "w") as fh:
            header = {"schema": doc["schema"],
                      "trace_sample": doc["trace_sample"],
                      "summary": doc["summary"]}
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for span in doc["spans"]:
                fh.write(json.dumps(span, sort_keys=True) + "\n")


def spans_if(enabled: bool, sim: Any = None,
             **kwargs: Any) -> Optional[SpanRecorder]:
    """``SpanRecorder`` when enabled, else ``None`` — the single
    None-check contract (mirrors ``profiler_if`` / ``telemetry_if``)."""
    if not enabled:
        return None
    return SpanRecorder(sim=sim, **kwargs)


# -- validation ------------------------------------------------------------

_REQUIRED_SPAN_KEYS = ("trace", "span", "parent", "name", "source",
                       "start", "end", "wall", "tags")


def validate_spans(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Structural validation of a spans/v1 export; raises ValueError."""
    if not isinstance(doc, dict) or doc.get("schema") != SPANS_SCHEMA:
        raise ValueError(f"not a {SPANS_SCHEMA} document: "
                         f"schema={doc.get('schema')!r}")
    summary = doc.get("summary")
    spans = doc.get("spans")
    if not isinstance(summary, dict) or not isinstance(spans, list):
        raise ValueError("missing summary/spans sections")
    if summary.get("spans") != len(spans):
        raise ValueError(f"summary.spans={summary.get('spans')} but "
                         f"{len(spans)} spans present")
    seen: set = set()
    traces: set = set()
    for i, span in enumerate(spans):
        for key in _REQUIRED_SPAN_KEYS:
            if key not in span:
                raise ValueError(f"span[{i}] missing key {key!r}")
        if not isinstance(span["trace"], int) or not isinstance(span["span"], int):
            raise ValueError(f"span[{i}] ids must be ints")
        ident = (span["trace"], span["span"])
        if ident in seen:
            raise ValueError(f"span[{i}] duplicate id {ident}")
        parent = span["parent"]
        if parent is not None and (span["trace"], parent) not in seen:
            raise ValueError(f"span[{i}] parent {parent} not defined "
                             f"earlier in trace {span['trace']}")
        if not isinstance(span["tags"], dict):
            raise ValueError(f"span[{i}] tags must be a dict")
        for link in span.get("links", []):
            if not {"ref", "trace", "span"} <= set(link):
                raise ValueError(f"span[{i}] malformed link: {link}")
        seen.add(ident)
        traces.add(span["trace"])
    declared = summary.get("traces")
    if not isinstance(declared, int) or declared < len(traces):
        raise ValueError(f"summary.traces={declared} < {len(traces)} "
                         "distinct trace ids present")
    return doc


def spans_rollup(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Compact, deterministic per-run rollup for sweep/chaos records.

    Deliberately excludes wall-clock figures so cached sweep cells and
    chaos replays stay bit-identical across hosts.
    """
    by_name: Dict[str, Dict[str, Any]] = {}
    for span in doc["spans"]:
        entry = by_name.setdefault(span["name"], {"count": 0, "sim_time": 0.0})
        entry["count"] += 1
        end = span["end"]
        if end is not None:
            entry["sim_time"] += end - span["start"]
    for entry in by_name.values():
        entry["sim_time"] = round(entry["sim_time"], 9)
    return {
        "traces": doc["summary"]["traces"],
        "spans": doc["summary"]["spans"],
        "dropped": doc["summary"]["dropped"],
        "by_name": {name: by_name[name] for name in sorted(by_name)},
    }


# -- causal-chain walking --------------------------------------------------

def spans_by_trace(doc: Dict[str, Any]) -> Dict[int, List[Dict[str, Any]]]:
    out: Dict[int, List[Dict[str, Any]]] = {}
    for span in doc["spans"]:
        out.setdefault(span["trace"], []).append(span)
    return out


def _trace_root(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    for span in spans:
        if span["parent"] is None:
            return span
    return spans[0]


def find_livelock_trace(doc: Dict[str, Any]) -> Optional[int]:
    """Pick the trace that best exhibits the §IV-B circular dependency.

    Preference order: a trace whose decode dropped MISSING *and* whose
    encode links to a dependency trace carrying the same TCP sequence
    number (the circular case); then any MISSING-drop trace; then any
    trace with a drop event at all.
    """
    by_trace = spans_by_trace(doc)
    fallback: Optional[int] = None
    dropped: Optional[int] = None
    for tid in sorted(by_trace):
        spans = by_trace[tid]
        missing = any(s["name"] == "decode"
                      and s["tags"].get("status") == "missing"
                      for s in spans)
        if not missing:
            if dropped is None and any("drop" in s["name"] for s in spans):
                dropped = tid
            continue
        if fallback is None:
            fallback = tid
        seq = _trace_root(spans)["tags"].get("seq")
        for span in spans:
            for link in span.get("links", []):
                if link["ref"] != "encoded_against":
                    continue
                dep = by_trace.get(link["trace"])
                if dep and seq is not None \
                        and _trace_root(dep)["tags"].get("seq") == seq:
                    return tid
    return fallback if fallback is not None else dropped


def format_chain(doc: Dict[str, Any], trace_id: int,
                 max_hops: int = 6) -> List[str]:
    """Render one causal chain, hop by hop, following cross-trace links.

    Starts at ``trace_id`` and walks ``encoded_against`` /
    ``retransmission_of`` / ``caused_by_retransmit`` links breadth-
    first (bounded by ``max_hops``).  A hop whose root carries a
    (flow, seq) already seen earlier in the chain is flagged as the
    circular dependency.
    """
    by_trace = spans_by_trace(doc)
    if trace_id not in by_trace:
        return [f"trace t{trace_id}: not found "
                f"({len(by_trace)} traces in export)"]
    lines: List[str] = []
    visited: List[int] = []
    seen_seqs: Dict[Any, int] = {}
    queue: List[int] = [trace_id]
    while queue and len(visited) < max_hops:
        tid = queue.pop(0)
        if tid in visited or tid not in by_trace:
            continue
        visited.append(tid)
        spans = sorted(by_trace[tid], key=lambda s: s["span"])
        root = _trace_root(spans)
        tags = root["tags"]
        header = f"trace t{tid} [{root['name']}]"
        if "packet" in tags:
            header += f" packet={tags['packet']}"
        if "seq" in tags:
            header += f" seq={tags['seq']}"
        if "flow" in tags:
            header += f" flow={':'.join(str(p) for p in tags['flow'])}"
        key = (json.dumps(tags.get("flow")), tags.get("seq"))
        if tags.get("seq") is not None:
            prev = seen_seqs.get(key)
            if prev is not None:
                header += (f"   <== CIRCULAR: same flow/seq as trace t{prev}"
                           " — this segment was encoded against a lost copy"
                           " of itself")
            else:
                seen_seqs[key] = tid
        lines.append(header)
        # Depth from parent links, for indentation.
        depth_of: Dict[int, int] = {}
        for span in spans:
            parent = span["parent"]
            depth_of[span["span"]] = (depth_of.get(parent, -1) + 1
                                      if parent is not None else 0)
        for span in spans:
            indent = "  " * depth_of[span["span"]]
            detail = " ".join(
                f"{k}={v}" for k, v in sorted(span["tags"].items())
                if k not in ("flow", "packet"))
            lines.append(f"  [{span['start']:10.4f}s] {indent}"
                         f"{span['source']:<16} {span['name']:<16} {detail}")
            for link in span.get("links", []):
                lines.append(f"  {'':12s} {indent}  "
                             f"`-> {link['ref']} -> trace t{link['trace']}")
                if link["trace"] not in visited:
                    queue.append(link["trace"])
    if len(visited) >= max_hops and queue:
        lines.append(f"... chain truncated at {max_hops} hops "
                     f"({len(queue)} linked traces unvisited)")
    return lines
