"""Minimal HTTP/1.0 over the simulated TCP stack.

Used by the examples to show byte caching operating beneath a real
application protocol (the paper's testbed serves files from Apache over
HTTP; byte caching itself is protocol-independent, §I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..net.tcp import TCPConnection, TCPStack
from ..sim.engine import Simulator

_CRLF = b"\r\n"
_HEADER_END = b"\r\n\r\n"


@dataclass
class HTTPResponse:
    """A parsed HTTP response."""

    status: int
    headers: Dict[str, str]
    body: bytes
    finished_at: float = 0.0


class HTTPServer:
    """Serves a static resource map over HTTP/1.0 (close-delimited)."""

    def __init__(self, stack: TCPStack, resources: Dict[str, bytes],
                 port: int = 80, server_name: str = "repro/1.0"):
        self.resources = dict(resources)
        self.port = port
        self.server_name = server_name
        self.hits = 0
        self.misses = 0
        stack.listen(port, self._accept)

    def _accept(self, conn: TCPConnection) -> None:
        buffer = bytearray()

        def on_receive(data: bytes) -> None:
            buffer.extend(data)
            if _HEADER_END not in buffer:
                return
            conn.on_receive = None
            self._respond(conn, bytes(buffer))

        conn.on_receive = on_receive

    def _respond(self, conn: TCPConnection, raw: bytes) -> None:
        request_line = raw.split(_CRLF, 1)[0].decode("ascii", "replace")
        parts = request_line.split()
        path = parts[1] if len(parts) >= 2 else "/"
        body = self.resources.get(path)
        if body is None:
            self.misses += 1
            head = (f"HTTP/1.0 404 Not Found\r\nServer: {self.server_name}\r\n"
                    f"Content-Length: 0\r\n\r\n")
            conn.send(head.encode("ascii"))
        else:
            self.hits += 1
            head = (f"HTTP/1.0 200 OK\r\nServer: {self.server_name}\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n")
            conn.send(head.encode("ascii") + body)
        conn.close()


class HTTPClient:
    """One-shot HTTP/1.0 GET client."""

    def __init__(self, stack: TCPStack, sim: Simulator):
        self.stack = stack
        self.sim = sim

    def get(self, server_addr: str, path: str, port: int = 80,
            on_done: Optional[Callable[[HTTPResponse], None]] = None) -> None:
        """Issue a GET; ``on_done`` fires with the parsed response."""
        conn = self.stack.connect(server_addr, port)
        raw = bytearray()

        def finish() -> None:
            response = _parse_response(bytes(raw))
            response.finished_at = self.sim.now
            if on_done is not None:
                on_done(response)

        request = (f"GET {path} HTTP/1.0\r\nHost: {server_addr}\r\n"
                   f"User-Agent: repro-client\r\n\r\n")
        conn.on_established = lambda: conn.send(request.encode("ascii"))
        conn.on_receive = raw.extend
        conn.on_remote_close = finish


def _parse_response(raw: bytes) -> HTTPResponse:
    if _HEADER_END not in raw:
        return HTTPResponse(status=0, headers={}, body=b"")
    head, body = raw.split(_HEADER_END, 1)
    lines = head.split(_CRLF)
    try:
        status = int(lines[0].split()[1])
    except (IndexError, ValueError):
        status = 0
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        key, _, value = line.decode("ascii", "replace").partition(":")
        if value:
            headers[key.strip().lower()] = value.strip()
    return HTTPResponse(status=status, headers=headers, body=body)
