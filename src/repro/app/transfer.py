"""File-transfer application used by the experiments.

Mirrors the paper's setup (Fig. 3): a client retrieves a file from a
server across the byte-caching pair.  The protocol is a single request
line ``GET <name>\\n``; the server replies with the raw file bytes and
closes.  The client treats the server's FIN as end-of-file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..net.tcp import TCPConnection, TCPStack
from ..sim.engine import Simulator


class FileServer:
    """Serves named byte objects over simulated TCP."""

    def __init__(self, stack: TCPStack, files: Dict[str, bytes], port: int = 80):
        self.stack = stack
        self.files = dict(files)
        self.port = port
        self.requests_served = 0
        self.requests_failed = 0
        stack.listen(port, self._accept)

    def add_file(self, name: str, data: bytes) -> None:
        self.files[name] = data

    def _accept(self, conn: TCPConnection) -> None:
        buffer = bytearray()

        def on_receive(data: bytes) -> None:
            buffer.extend(data)
            if b"\n" not in buffer:
                return
            line, _, _ = bytes(buffer).partition(b"\n")
            conn.on_receive = None  # single-request protocol
            self._respond(conn, line)

        conn.on_receive = on_receive

    def _respond(self, conn: TCPConnection, line: bytes) -> None:
        parts = line.decode("ascii", "replace").split()
        name = parts[1] if len(parts) >= 2 and parts[0] == "GET" else None
        data = self.files.get(name) if name else None
        if data is None:
            self.requests_failed += 1
            conn.close()
            return
        self.requests_served += 1
        conn.send(data)
        conn.close()


@dataclass
class TransferOutcome:
    """Client-observed outcome of one file retrieval."""

    name: str
    expected_size: int
    bytes_received: int = 0
    started_at: float = 0.0
    first_byte_at: Optional[float] = None
    finished_at: Optional[float] = None
    completed: bool = False
    stalled: bool = False
    close_reason: Optional[str] = None
    content_ok: Optional[bool] = None

    @property
    def duration(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def fraction_retrieved(self) -> float:
        if self.expected_size == 0:
            return 1.0
        return min(1.0, self.bytes_received / self.expected_size)


class FileClient:
    """Retrieves one file and records the paper's client-side metrics."""

    def __init__(self, stack: TCPStack, sim: Simulator):
        self.stack = stack
        self.sim = sim

    def fetch(self, server_addr: str, name: str, expected_size: int,
              expected_content: Optional[bytes] = None,
              port: int = 80,
              on_data: Optional[Callable[[bytes], None]] = None,
              on_done: Optional[Callable[[TransferOutcome], None]] = None,
              conn_sink: Optional[Callable[[TCPConnection], None]] = None
              ) -> TransferOutcome:
        """Start a retrieval; returns the live outcome object.

        The outcome is filled in as the simulation runs; ``on_data``
        observes every in-order chunk as TCP delivers it (the
        verification layer's byte-integrity oracle and the differential
        runner's stream capture hang here); ``on_done`` fires when the
        transfer completes or the connection dies.  ``conn_sink``
        receives the underlying connection object at open time — the
        serving engine's flow pool needs it for timeout aborts and
        post-close release, while the outcome itself stays a pure value
        object (see below).
        """
        outcome = TransferOutcome(name=name, expected_size=expected_size,
                                  started_at=self.sim.now)
        received = bytearray() if expected_content is not None else None
        conn = self.stack.connect(server_addr, port)
        if conn_sink is not None:
            conn_sink(conn)

        def finish(stalled: bool, reason: Optional[str]) -> None:
            if outcome.finished_at is not None:
                return
            outcome.finished_at = self.sim.now
            outcome.stalled = stalled
            outcome.close_reason = reason
            outcome.completed = (not stalled
                                 and outcome.bytes_received >= expected_size)
            if received is not None:
                outcome.content_ok = bytes(received) == expected_content
            if on_done is not None:
                on_done(outcome)

        def on_receive(data: bytes) -> None:
            if outcome.first_byte_at is None:
                outcome.first_byte_at = self.sim.now
            if on_data is not None:
                on_data(data)
            outcome.bytes_received += len(data)
            if received is not None:
                received.extend(data)

        conn.on_established = lambda: conn.send(f"GET {name}\n".encode("ascii"))
        conn.on_receive = on_receive
        conn.on_remote_close = lambda: finish(stalled=False, reason="fin")
        conn.on_close = lambda reason: finish(
            stalled=(reason not in ("fin",)), reason=reason)
        # Deliberately no back-reference to the connection: the outcome
        # must stay a pure value object (the sweep engine pickles it
        # across process-pool workers and round-trips it through JSON).
        return outcome
