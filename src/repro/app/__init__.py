"""Application layer: file transfer protocol and minimal HTTP."""

from .http import HTTPClient, HTTPResponse, HTTPServer
from .transfer import FileClient, FileServer, TransferOutcome

__all__ = [
    "HTTPClient",
    "HTTPResponse",
    "HTTPServer",
    "FileClient",
    "FileServer",
    "TransferOutcome",
]
