"""Dependency-controlled synthetic files.

§VI evaluates two files distinguished by their *average number of
dependencies to distinct IP packets*: File 1 averages 4, File 2
averages 7, and the paper shows the higher-degree file is more
sensitive to loss because dependencies correlate losses.

The generator builds a file as a sequence of MSS-sized blocks (so TCP
segmentation of a straight ``send(file)`` aligns block == packet).
Each block after the first copies chunks from ``d_i`` distinct earlier
blocks (``d_i`` ~ Poisson(avg_dependencies), clipped), separated by
fresh random bytes.  The copied fraction per block is the target
``redundancy``; chunk lengths comfortably exceed the fingerprint window
so the encoder can find them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

DEFAULT_MSS = 1460


@dataclass
class DependencyFileSpec:
    """Parameters of a dependency-controlled file."""

    size: int
    avg_dependencies: float = 4.0
    redundancy: float = 0.5
    mss: int = DEFAULT_MSS
    history_window: int = 32     # how far back chunks may be copied from
    locality_scale: float = 5.0  # mean back-distance of a copied chunk
    min_chunk: int = 48          # keep every chunk encodable (> 14 + w)
    seed: int = 0


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler (lam is small here)."""
    import math

    limit = math.exp(-lam)
    k = 0
    product = rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k


def generate_dependency_file(spec: DependencyFileSpec) -> bytes:
    """Generate the file described by ``spec`` (deterministic in seed)."""
    if spec.size <= 0:
        raise ValueError("size must be positive")
    if not 0.0 <= spec.redundancy < 0.95:
        raise ValueError("redundancy must be in [0, 0.95)")
    rng = random.Random(spec.seed)
    n_blocks = (spec.size + spec.mss - 1) // spec.mss
    blocks: List[bytes] = []
    for index in range(n_blocks):
        block_len = min(spec.mss, spec.size - index * spec.mss)
        blocks.append(_make_block(rng, spec, blocks, index, block_len))
    return b"".join(blocks)


def _make_block(rng: random.Random, spec: DependencyFileSpec,
                blocks: List[bytes], index: int, block_len: int) -> bytes:
    if index == 0 or spec.redundancy == 0.0 or block_len < 4 * spec.min_chunk:
        return rng.randbytes(block_len)

    lo = max(0, index - spec.history_window)
    deps = _poisson(rng, spec.avg_dependencies)
    deps = max(1, min(deps, index - lo, block_len // (2 * spec.min_chunk)))
    sources = _pick_sources(rng, lo, index, deps, spec.locality_scale)

    copy_budget = int(block_len * spec.redundancy)
    per_chunk = max(spec.min_chunk, copy_budget // deps)
    parts: List[bytes] = []
    used = 0
    gap_budget = block_len - min(copy_budget, per_chunk * deps)
    gaps = _split_gap(rng, gap_budget, deps + 1)
    for i, source_index in enumerate(sources):
        parts.append(rng.randbytes(gaps[i]))
        used += gaps[i]
        source = blocks[source_index]
        chunk_len = min(per_chunk, block_len - used, len(source))
        if chunk_len < spec.min_chunk:
            continue
        start = rng.randrange(0, max(1, len(source) - chunk_len + 1))
        parts.append(source[start: start + chunk_len])
        used += chunk_len
    parts.append(rng.randbytes(max(0, block_len - used)))
    block = b"".join(parts)[:block_len]
    if len(block) < block_len:
        block += rng.randbytes(block_len - len(block))
    return block


def _pick_sources(rng: random.Random, lo: int, index: int, deps: int,
                  locality_scale: float) -> List[int]:
    """Pick ``deps`` distinct source blocks with recency bias.

    Back-distances are ~geometric with mean ``locality_scale``, matching
    the short-range temporal locality of real content (and making the
    k-distance reference window meaningful: most redundancy is within a
    handful of packets, with a tail out to ``history_window``).
    """
    chosen: List[int] = []
    seen = set()
    attempts = 0
    while len(chosen) < deps and attempts < 50 * deps:
        attempts += 1
        back = 1 + int(rng.expovariate(1.0 / max(0.5, locality_scale)))
        source = index - back
        if source < lo or source in seen:
            continue
        seen.add(source)
        chosen.append(source)
    for source in range(index - 1, lo - 1, -1):
        if len(chosen) >= deps:
            break
        if source not in seen:
            seen.add(source)
            chosen.append(source)
    return chosen


def _split_gap(rng: random.Random, total: int, parts: int) -> List[int]:
    """Split ``total`` filler bytes into ``parts`` random-ish gaps."""
    if parts <= 0:
        return []
    base = total // parts
    gaps = [base] * parts
    remainder = total - base * parts
    for _ in range(remainder):
        gaps[rng.randrange(parts)] += 1
    # Shuffle a little so gaps differ without changing the sum.
    for i in range(parts - 1):
        if gaps[i] > 8:
            shift = rng.randrange(0, gaps[i] // 2)
            gaps[i] -= shift
            gaps[i + 1] += shift
    return gaps


def measure_dependencies(file_bytes: bytes, mss: int = DEFAULT_MSS,
                         scheme=None) -> float:
    """Measure the realised average dependency degree of a file.

    Runs the file's blocks through a fresh encoder (naive policy, no
    network) and averages the number of distinct prior packets each
    encoded packet references — the statistic the paper reports for
    File 1 (≈4) and File 2 (≈7).
    """
    from ..core.cache import ByteCache
    from ..core.encoder import ByteCachingEncoder
    from ..core.fingerprint import FingerprintScheme
    from ..core.policies.base import PacketMeta
    from ..core.policies.naive import NaivePolicy

    if scheme is None:
        scheme = FingerprintScheme()
    encoder = ByteCachingEncoder(scheme, ByteCache(), NaivePolicy())
    degrees = []
    for index in range(0, len(file_bytes), mss):
        block = file_bytes[index: index + mss]
        meta = PacketMeta(packet_id=index // mss, flow=("m", 0, "m", 1),
                          tcp_seq=index, counter=index // mss)
        result = encoder.encode(block, meta)
        if result.encoded:
            degrees.append(len(result.dependencies))
    if not degrees:
        return 0.0
    return sum(degrees) / len(degrees)
