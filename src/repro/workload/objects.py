"""Synthetic web objects for the Table I redundancy baseline.

Table I reports the intrinsic redundancy byte caching finds in three
object classes as the cache window grows (k = 10/100/1000 packets):

* ebook — plain text: 0.3 % to ~1 %;
* video — already-compressed media: ~0.009 % to 1 %;
* web page — template-heavy browsing session: 19–42 % up to 26–52 %.

The generators below produce deterministic objects whose *redundancy
profile* matches those shapes; they stand in for the paper's real
objects, which we do not have (see DESIGN.md substitution table).
"""

from __future__ import annotations

import random
from typing import List

_WORD_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def _vocabulary(rng: random.Random, n_words: int = 4096) -> List[bytes]:
    words = []
    for _ in range(n_words):
        length = rng.randint(3, 10)
        words.append("".join(rng.choice(_WORD_ALPHABET)
                             for _ in range(length)).encode("ascii"))
    return words


def generate_ebook(size: int, seed: int = 0,
                   boilerplate_rate: float = 0.012) -> bytes:
    """Plain-text ebook with sparse repeated boilerplate.

    Body text is drawn from a large vocabulary (word-level novelty keeps
    window-level redundancy near zero) with occasional repeated chapter
    headers / licence boilerplate, giving the sub-1 % redundancy of
    Table I's ebook column.
    """
    rng = random.Random(seed)
    vocabulary = _vocabulary(rng)
    boilerplate = [
        b"\n\n*** CHAPTER %d: of the many things that came to pass ***\n\n",
        b"\n\nThis text is distributed in the hope that it will be useful,"
        b" but WITHOUT ANY WARRANTY; reproduced with permission.\n\n",
    ]
    out = bytearray()
    chapter = 0
    while len(out) < size:
        if rng.random() < boilerplate_rate:
            chapter += 1
            template = boilerplate[rng.randrange(len(boilerplate))]
            out += (template % chapter) if b"%d" in template else template
            continue
        sentence_len = rng.randint(6, 16)
        words = [vocabulary[rng.randrange(len(vocabulary))]
                 for _ in range(sentence_len)]
        out += b" ".join(words) + b". "
        if rng.random() < 0.12:
            out += b"\n"
    return bytes(out[:size])


def generate_video(size: int, seed: int = 0,
                   atom_interval: int = 64 * 1024,
                   atom_size: int = 720) -> bytes:
    """Compressed-media object: random bytes plus container atoms.

    Compressed video payloads are statistically random; the only
    repetition is container framing (recurring stream headers), spaced
    far enough apart that a 10-packet cache window sees none of it
    while a 1000-packet window recovers ~1 % — Table I's video column
    (0.009 %–1 %).
    """
    rng = random.Random(seed)
    atom = b"\x00\x00\x01\xB3moov" + rng.randbytes(max(0, atom_size - 8))
    out = bytearray()
    while len(out) < size:
        out += atom
        out += rng.randbytes(min(atom_interval, size - len(out)))
    return bytes(out[:size])


def generate_software_versions(size: int, n_versions: int = 2,
                               change_fraction: float = 0.08,
                               seed: int = 0,
                               block_size: int = 4096) -> List[bytes]:
    """Successive versions of a binary artifact.

    §I motivates byte caching for "modified content": a client that
    fetched version N and later fetches version N+1 should only pay for
    the changed blocks.  Each version rewrites ``change_fraction`` of
    the previous version's blocks (and may shift content slightly, which
    content-defined fingerprinting tolerates where fixed-block dedup
    would not).
    """
    if n_versions < 1:
        raise ValueError("n_versions must be >= 1")
    if not 0.0 <= change_fraction <= 1.0:
        raise ValueError("change_fraction must be in [0, 1]")
    rng = random.Random(seed)
    blocks = [rng.randbytes(block_size)
              for _ in range((size + block_size - 1) // block_size)]
    versions = [b"".join(blocks)[:size]]
    for _ in range(n_versions - 1):
        n_changes = max(1, int(len(blocks) * change_fraction))
        for _ in range(n_changes):
            index = rng.randrange(len(blocks))
            if rng.random() < 0.3:
                # An insertion-style edit: the block grows a little,
                # shifting everything after it.
                blocks[index] = (rng.randbytes(48) + blocks[index])[:block_size + 48]
            else:
                blocks[index] = rng.randbytes(len(blocks[index]))
        versions.append(b"".join(blocks)[:size])
    return versions


def generate_webpage_session(size: int, seed: int = 0,
                             page_size: int = 8 * 1024,
                             template_fraction: float = 0.38,
                             shared_asset_fraction: float = 0.12) -> bytes:
    """A browsing session: pages of one site sharing template markup.

    Every page interleaves shared template fragments (header, nav,
    footer, inline CSS/JS — ``template_fraction`` of each page) with
    unique article text.  Short cache windows already capture the
    within-site template reuse (Table I: 19–42 % at k=10) and longer
    windows capture repeated asset references across the whole session
    (26–52 % at k=1000).
    """
    rng = random.Random(seed)
    vocabulary = _vocabulary(rng, 2048)

    def html_text(n_bytes: int) -> bytes:
        parts: List[bytes] = []
        total = 0
        while total < n_bytes:
            word = vocabulary[rng.randrange(len(vocabulary))]
            parts.append(word)
            total += len(word) + 1
        return b" ".join(parts)[:n_bytes]

    # Site-wide template fragments, reused verbatim on every page.
    header = b"<html><head><style>" + rng.randbytes(1024) + b"</style></head>"
    nav = b"<nav>" + html_text(int(page_size * template_fraction * 0.35)) + b"</nav>"
    footer = b"<footer>" + html_text(int(page_size * template_fraction * 0.25)) + b"</footer></html>"
    script = b"<script>" + rng.randbytes(int(page_size * template_fraction * 0.2)) + b"</script>"
    shared_assets = [rng.randbytes(int(page_size * shared_asset_fraction))
                     for _ in range(6)]

    out = bytearray()
    while len(out) < size:
        unique_len = max(0, page_size - len(header) - len(nav)
                         - len(footer) - len(script))
        body = html_text(unique_len)
        page = bytearray()
        page += header + nav
        page += b"<article>" + body + b"</article>"
        if rng.random() < 0.7:
            page += shared_assets[rng.randrange(len(shared_assets))]
        page += script + footer
        out += page
    return bytes(out[:size])
