"""Synthetic workloads: corpus objects and dependency-controlled files."""

from .catalog import CatalogSpec, ContentCatalog, zipf_sample_counts
from .corpus import (EVAL_FILE_SIZE, PAPER_EBOOK_SIZE, clear_corpus_cache,
                     corpus_names, corpus_object)
from .objects import (generate_ebook, generate_software_versions,
                      generate_video, generate_webpage_session)
from .redundancy import (DEFAULT_MSS, DependencyFileSpec,
                         generate_dependency_file, measure_dependencies)

__all__ = [
    "CatalogSpec",
    "ContentCatalog",
    "zipf_sample_counts",
    "EVAL_FILE_SIZE",
    "PAPER_EBOOK_SIZE",
    "clear_corpus_cache",
    "corpus_names",
    "corpus_object",
    "generate_ebook",
    "generate_software_versions",
    "generate_video",
    "generate_webpage_session",
    "DEFAULT_MSS",
    "DependencyFileSpec",
    "generate_dependency_file",
    "measure_dependencies",
]
