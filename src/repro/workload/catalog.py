"""Zipf-popularity content catalog for population serving.

A cellular gateway's byte-cache hit ratio is driven by cross-user
content overlap, and overlap is driven by popularity skew: web and
video request streams are classically Zipf(alpha ~ 0.6-1.2, Breslau et
al.).  The catalog here is the serving mode's universe of objects:

* ``n_contents`` objects, ranked by popularity, request probability
  proportional to ``rank ** -alpha``;
* object sizes drawn from a lognormal around ``mean_object_bytes``
  (clamped to ``[min_object_bytes, max_object_bytes]``), so a catalog
  mixes small pages with the occasional heavy download;
* object *bytes* synthesized lazily by the existing
  dependency-controlled redundancy model
  (:func:`repro.workload.redundancy.generate_dependency_file`), each
  content from its own derived seed — two users fetching the same
  content see identical bytes (that is what the shared cache exploits),
  while distinct contents share nothing by construction.

Everything is deterministic in ``spec.seed``; sampling takes the
caller's RNG so the session generator owns the request stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..sim.rng import derive_seed
from .redundancy import DependencyFileSpec, generate_dependency_file


@dataclass(frozen=True)
class CatalogSpec:
    """Parameters of a Zipf content catalog."""

    n_contents: int = 200
    alpha: float = 0.8               # Zipf skew; 0 = uniform
    mean_object_bytes: int = 8 * 1024
    size_spread: float = 0.6         # sigma of the lognormal size draw
    min_object_bytes: int = 512
    max_object_bytes: int = 256 * 1024
    redundancy: float = 0.5          # intra-object redundancy (paper model)
    avg_dependencies: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_contents <= 0:
            raise ValueError("n_contents must be positive")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not (0 < self.min_object_bytes <= self.mean_object_bytes
                <= self.max_object_bytes):
            raise ValueError("need 0 < min <= mean <= max object bytes")


class ContentCatalog:
    """The ranked, lazily materialised object universe of a serve-sim."""

    def __init__(self, spec: CatalogSpec) -> None:
        self.spec = spec
        n = spec.n_contents
        # Popularity: pmf[i] ∝ (i+1)^-alpha over ranks 1..n.
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** -spec.alpha
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        self._cdf[-1] = 1.0  # guard searchsorted against fp round-off
        # Sizes: one lognormal draw per content, fixed at catalog build
        # (an object's size is a property of the object, not the request).
        size_rng = np.random.default_rng(derive_seed(spec.seed, "catalog:sizes"))
        mu = np.log(spec.mean_object_bytes) - 0.5 * spec.size_spread ** 2
        sizes = np.exp(size_rng.normal(mu, spec.size_spread, size=n))
        self._sizes = np.clip(np.rint(sizes), spec.min_object_bytes,
                              spec.max_object_bytes).astype(np.int64)
        self._objects: Dict[int, bytes] = {}
        self.materialised = 0

    def __len__(self) -> int:
        return self.spec.n_contents

    def pmf(self) -> np.ndarray:
        """Theoretical request probability per content id (rank order)."""
        return self._pmf

    def sample(self, u: float) -> int:
        """Content id for a uniform draw ``u`` in [0, 1) (inverse cdf)."""
        return int(np.searchsorted(self._cdf, u, side="right"))

    def size_of(self, content_id: int) -> int:
        return int(self._sizes[content_id])

    def name_of(self, content_id: int) -> str:
        return f"c{content_id}"

    def content_id(self, name: str) -> int:
        if not name.startswith("c"):
            raise KeyError(name)
        cid = int(name[1:])
        if not 0 <= cid < self.spec.n_contents:
            raise KeyError(name)
        return cid

    def object_bytes(self, content_id: int) -> bytes:
        """The object's bytes, generated on first request and memoised.

        Lazy materialisation is what makes 10k-content catalogs usable:
        a Zipf(0.8) run over 10k contents touches only a few hundred.
        """
        cached = self._objects.get(content_id)
        if cached is not None:
            return cached
        spec = self.spec
        body = generate_dependency_file(DependencyFileSpec(
            size=self.size_of(content_id),
            avg_dependencies=spec.avg_dependencies,
            redundancy=spec.redundancy,
            seed=derive_seed(spec.seed, f"catalog:object:{content_id}")))
        self._objects[content_id] = body
        self.materialised += 1
        return body

    def materialised_bytes(self) -> int:
        return sum(len(body) for body in self._objects.values())

    def top_contents(self, k: int) -> List[int]:
        """The ``k`` most popular content ids (they are rank-ordered)."""
        return list(range(min(k, self.spec.n_contents)))

    def describe(self) -> Dict[str, object]:
        return {
            "n_contents": self.spec.n_contents,
            "alpha": self.spec.alpha,
            "mean_object_bytes": self.spec.mean_object_bytes,
            "total_catalog_bytes": int(self._sizes.sum()),
            "materialised": self.materialised,
        }


def zipf_sample_counts(spec: CatalogSpec, n_samples: int,
                       seed: Optional[int] = None) -> np.ndarray:
    """Histogram of ``n_samples`` catalog draws (property-test helper)."""
    catalog = ContentCatalog(spec)
    rng = np.random.default_rng(
        derive_seed(spec.seed if seed is None else seed, "catalog:samples"))
    draws = np.searchsorted(catalog._cdf, rng.random(n_samples), side="right")
    return np.bincount(draws, minlength=spec.n_contents)
