"""Named corpus registry used by experiments and examples.

Central place mapping the paper's evaluation objects to generator
calls, so every bench/test refers to, say, ``corpus_object("file1")``
and gets byte-identical content for a given seed.
"""

from __future__ import annotations

from typing import Callable, Dict

from .objects import generate_ebook, generate_video, generate_webpage_session
from .redundancy import DependencyFileSpec, generate_dependency_file

#: Size of the e-book the paper retrieves in §IV-C ("587,567 bytes").
PAPER_EBOOK_SIZE = 587_567

#: Default size for the two evaluation files of §VI (same ballpark).
EVAL_FILE_SIZE = 574 * 1024


def _file1(size: int, seed: int) -> bytes:
    """File 1 of §VI: average dependency degree ≈ 4.

    The Poisson parameter is slightly below the target because clipping
    (at least one dependency per redundant block) and incidental chunk
    sharing push the realised mean up; ``measure_dependencies`` on the
    generated file lands at ≈ 4.
    """
    return generate_dependency_file(DependencyFileSpec(
        size=size, avg_dependencies=3.3, redundancy=0.5, seed=seed))


def _file2(size: int, seed: int) -> bytes:
    """File 2 of §VI: average dependency degree ≈ 7 (see _file1 note)."""
    return generate_dependency_file(DependencyFileSpec(
        size=size, avg_dependencies=6.3, redundancy=0.5, seed=seed))


def _random_file(size: int, seed: int) -> bytes:
    """Incompressible control: no intra-file redundancy at all."""
    import random

    return random.Random(seed).randbytes(size)


def _longhaul(size: int, seed: int) -> bytes:
    """Long-range redundancy: matches point far behind the TCP window.

    With short-range redundancy a cache divergence self-heals within a
    retransmission or two (the referenced bytes are still in flight);
    here the decoder needs its *old* entries, so a cold restart or a
    one-sided eviction hurts persistently until the caches are actively
    resynchronised.  The chaos campaigns' default object.
    """
    return generate_dependency_file(DependencyFileSpec(
        size=size, avg_dependencies=3.0, redundancy=0.5,
        history_window=300, locality_scale=100.0, seed=seed))


_GENERATORS: Dict[str, Callable[[int, int], bytes]] = {
    "file1": _file1,
    "file2": _file2,
    "ebook": lambda size, seed: generate_ebook(size, seed),
    "video": lambda size, seed: generate_video(size, seed),
    "webpages": lambda size, seed: generate_webpage_session(size, seed),
    "random": _random_file,
    "longhaul": _longhaul,
}

_DEFAULT_SIZES: Dict[str, int] = {
    "file1": EVAL_FILE_SIZE,
    "file2": EVAL_FILE_SIZE,
    "ebook": PAPER_EBOOK_SIZE,
    "video": 1024 * 1024,
    "webpages": 1024 * 1024,
    "random": EVAL_FILE_SIZE,
    "longhaul": EVAL_FILE_SIZE,
}

_cache: Dict[tuple, bytes] = {}


def corpus_names() -> list:
    return sorted(_GENERATORS)


def corpus_object(name: str, size: int = 0, seed: int = 0) -> bytes:
    """Return the named corpus object (memoised; deterministic)."""
    if name not in _GENERATORS:
        raise ValueError(f"unknown corpus object {name!r}; "
                         f"known: {corpus_names()}")
    if size <= 0:
        size = _DEFAULT_SIZES[name]
    key = (name, size, seed)
    if key not in _cache:
        # lint: disable=purity-global-mutation(pure memoisation: the bytes are a deterministic function of the key, so a worker-local copy is byte-identical to the parent's)
        _cache[key] = _GENERATORS[name](size, seed)
    return _cache[key]


def clear_corpus_cache() -> None:
    """Drop memoised objects (tests use this to bound memory)."""
    _cache.clear()
