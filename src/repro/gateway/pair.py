"""Helper for creating a matched encoder/decoder gateway pair."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.cache import ByteCache
from ..core.fingerprint import FingerprintScheme
from ..core.shardcache import ShardedByteCache
from ..core.policies import make_policy_pair
from ..sim.engine import Simulator
from ..sim.trace import NULL_TRACER, Tracer
from .middlebox import DecoderGateway, EncoderGateway
from .resilience import ResilienceConfig


@dataclass
class GatewayPair:
    """An encoder and decoder sharing a fingerprint scheme and policy."""

    encoder: EncoderGateway
    decoder: DecoderGateway

    @classmethod
    def create(cls, sim: Simulator, policy: str = "naive",
               scheme: Optional[FingerprintScheme] = None,
               data_dst: Optional[str] = None,
               cache_bytes: int = 16 * 1024 * 1024,
               cache_max_packets: Optional[int] = None,
               cache_eviction: str = "fifo",
               cache_shards: int = 0,
               cache_admission: float = 1.0,
               encoder_address: str = "10.255.0.1",
               decoder_address: str = "10.255.0.2",
               tracer: Tracer = NULL_TRACER,
               resilience: Optional[ResilienceConfig] = None,
               telemetry=None,
               verifier=None,
               spans=None,
               **policy_kwargs) -> "GatewayPair":
        """Build both gateways for one direction of traffic.

        ``policy`` is a name from
        :data:`repro.core.policies.ENCODER_POLICIES`; ``policy_kwargs``
        are forwarded to it (e.g. ``k=8``).  ``data_dst`` restricts the
        encoded direction to packets destined for that address (the
        client, in the paper's downstream-transfer setup).  A
        ``resilience`` config arms the failure-recovery layer (epochs,
        resync, heartbeats) on both gateways.  A ``telemetry`` facade
        (duck-typed, see :mod:`repro.metrics.telemetry`) registers cache
        occupancy, drop accounting, resilience state and the running
        perceived-loss gauge on both sides.  A ``verifier`` harness
        (duck-typed, see :mod:`repro.verify.oracles`) attaches its
        invariant oracles to both ends of the pair.  A ``spans``
        recorder (duck-typed, see :mod:`repro.metrics.spans`) threads
        causal per-packet traces through both gateways and their codec
        cores.
        """
        if scheme is None:
            scheme = FingerprintScheme()
        encoder_policy, decoder_policy = make_policy_pair(policy, **policy_kwargs)

        def build_cache():
            # ``cache_shards > 0`` selects the shared-cache serving
            # configuration: one memory-bounded sharded cache per
            # direction, LRU by default, optional probabilistic
            # admission.  Both gateways get structurally identical
            # caches either way — cache symmetry is what DRE relies on.
            if cache_shards > 0:
                return ShardedByteCache(
                    cache_bytes, n_shards=cache_shards,
                    max_packets=cache_max_packets,
                    eviction=cache_eviction,
                    admission=cache_admission)
            return ByteCache(cache_bytes, cache_max_packets, cache_eviction)

        encoder = EncoderGateway(
            sim, "encoder-gw", encoder_address, scheme,
            build_cache(),
            encoder_policy, data_dst=data_dst, tracer=tracer,
            resilience=resilience)
        decoder = DecoderGateway(
            sim, "decoder-gw", decoder_address, scheme,
            build_cache(),
            decoder_policy, data_dst=data_dst, tracer=tracer,
            resilience=resilience)
        encoder.set_peer(decoder_address)
        decoder.set_peer(encoder_address)
        if telemetry is not None:
            telemetry.register_gateway(encoder, "encoder")
            telemetry.register_gateway(decoder, "decoder")
            telemetry.register_dre_pair(encoder, decoder)
        if verifier is not None:
            verifier.attach_pair(encoder, decoder)
        if spans is not None:
            encoder.spans = spans
            decoder.spans = spans
            encoder.encoder.spans = spans
            decoder.decoder.spans = spans
        return cls(encoder=encoder, decoder=decoder)
