"""Transparent TCP-level byte caching gateways (§II-A).

Commercial byte-caching appliances operate at the transport layer in a
*transparent* split-connection mode (Fig. 1): the client-side gateway
G1 intercepts the client's SYN and completes the handshake itself while
the server-side gateway G2 opens its own connection to the server, both
spoofing the end hosts' addresses so neither endpoint knows the
gateways exist.  The payload travels between G1 and G2 on a third,
gateway-to-gateway TCP connection where redundancy elimination happens
on *reliable, ordered* stream records — which is why packet loss never
desynchronises the caches in this mode.

The §II-A weakness this module lets experiments reproduce: the three
TCP connections have unrelated sequence spaces, so when the client
moves to a path that bypasses G1, its ACKs reach the real server inside
a connection whose numbers they do not match, and the transfer stalls.
The IP-level gateways (:mod:`.middlebox`) survive the same handoff.

Record protocol on the relay connection (one per direction-pair)::

    frame := kind(1) conn_id(2) length(4) payload(length)
    kind  := OPEN(1) | DATA_C2S(2) | DATA_S2C(3) | CLOSE(4)

DATA_S2C payloads are DRE-encoded with the standard policy-driven
encoder; the record's stream offset plays the role of the TCP sequence
number for the policies.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional

from ..core.cache import ByteCache
from ..core.decoder import ByteCachingDecoder
from ..core.encoder import ByteCachingEncoder
from ..core.fingerprint import FingerprintScheme
from ..core.policies import make_policy_pair
from ..core.policies.base import PacketMeta
from ..net.checksum import payload_checksum
from ..net.packet import IPPacket, PROTO_TCP
from ..net.tcp import TCPConfig, TCPConnection, TCPStack
from ..sim.engine import Simulator
from ..sim.node import Host, Node

FRAME_HEADER = struct.Struct(">BHI")
KIND_OPEN = 1
KIND_DATA_C2S = 2
KIND_DATA_S2C = 3
KIND_CLOSE = 4
RECORD_SIZE = 1460


class _SpoofHost(Host):
    """A host that owns somebody else's IP address (transparent mode)."""


class _FrameReader:
    """Incremental parser for the relay record protocol."""

    def __init__(self, on_frame: Callable[[int, int, bytes], None]):
        self._buffer = bytearray()
        self._on_frame = on_frame

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)
        while len(self._buffer) >= FRAME_HEADER.size:
            kind, conn_id, length = FRAME_HEADER.unpack_from(self._buffer, 0)
            end = FRAME_HEADER.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[FRAME_HEADER.size: end])
            del self._buffer[:end]
            self._on_frame(kind, conn_id, payload)


def _frame(kind: int, conn_id: int, payload: bytes = b"") -> bytes:
    return FRAME_HEADER.pack(kind, conn_id, len(payload)) + payload


class _StreamCodec:
    """Record-level DRE for the relay stream (reliable substrate)."""

    def __init__(self, policy_name: str, scheme: FingerprintScheme,
                 cache_bytes: int):
        encoder_policy, decoder_policy = make_policy_pair(policy_name)
        self.encoder = ByteCachingEncoder(scheme, ByteCache(cache_bytes),
                                          encoder_policy)
        self.decoder = ByteCachingDecoder(scheme, ByteCache(cache_bytes),
                                          decoder_policy)
        self._encode_offset = 0
        self._decode_offset = 0
        self._record_counter = 0

    def encode_record(self, conn_id: int, data: bytes) -> bytes:
        meta = PacketMeta(packet_id=self._record_counter,
                          flow=("relay", conn_id),
                          tcp_seq=self._encode_offset,
                          counter=self._record_counter)
        self._record_counter += 1
        self._encode_offset += len(data)
        result = self.encoder.encode(data, meta)
        checksum = payload_checksum(data)
        return struct.pack(">I", checksum) + result.data

    def decode_record(self, conn_id: int, blob: bytes) -> Optional[bytes]:
        checksum = struct.unpack_from(">I", blob, 0)[0]
        meta = PacketMeta(packet_id=self._record_counter,
                          flow=("relay", conn_id),
                          tcp_seq=self._decode_offset,
                          counter=self._record_counter)
        self._record_counter += 1
        result = self.decoder.decode(blob[4:], meta, checksum=checksum)
        if not result.ok:
            return None
        self._decode_offset += len(result.payload)
        return result.payload


class TcpProxyGateway(Node):
    """One side of the transparent split-TCP byte-caching pair.

    ``role`` is "client-side" (G1: intercepts the client's connections,
    spoofing the server) or "server-side" (G2: originates connections
    to the real server, spoofing the client).
    """

    def __init__(self, sim: Simulator, name: str, role: str, address: str,
                 client_addr: str, server_addr: str, server_port: int = 80,
                 policy: str = "tcp_seq",
                 scheme: Optional[FingerprintScheme] = None,
                 cache_bytes: int = 16 * 1024 * 1024,
                 tcp_config: Optional[TCPConfig] = None):
        super().__init__(sim, name)
        if role not in ("client-side", "server-side"):
            raise ValueError(f"bad role: {role}")
        self.role = role
        self.address = address
        self.client_addr = client_addr
        self.server_addr = server_addr
        self.server_port = server_port
        self.peer_address: Optional[str] = None
        self._tcp_config = tcp_config if tcp_config is not None else TCPConfig()

        spoofed = server_addr if role == "client-side" else client_addr
        self._spoof_host = _SpoofHost(sim, f"{name}-spoof", spoofed)
        self._spoof_stack = TCPStack(sim, self._spoof_host, self._tcp_config)
        self._relay_host = Host(sim, f"{name}-relay", address)
        self._relay_stack = TCPStack(sim, self._relay_host, self._tcp_config)

        self.codec = _StreamCodec(
            policy, scheme if scheme is not None else FingerprintScheme(),
            cache_bytes)
        self._relay_conn: Optional[TCPConnection] = None
        self._reader = _FrameReader(self._on_frame)
        self._conns: Dict[int, TCPConnection] = {}
        self._next_conn_id = 1
        self.records_relayed = 0
        self.relay_bytes = 0
        self.undecodable_records = 0

        if role == "client-side":
            self._spoof_stack.listen(server_port, self._accept_client)
        else:
            self._relay_stack.listen(9000, self._accept_relay)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach_routes(self, toward_client, toward_server,
                      peer_address: Optional[str] = None,
                      peer_side: str = "server") -> None:
        """Set the two outgoing links and mirror them into the inner
        hosts' route tables.  ``peer_side`` says which way the other
        gateway lies (the relay traffic must route towards it)."""
        peer_link = toward_server if peer_side == "server" else toward_client
        for node in (self._spoof_host, self._relay_host, self):
            if toward_client is not None:
                node.add_route(self.client_addr, toward_client)
            if toward_server is not None:
                node.set_default_route(toward_server)
            if peer_address is not None and peer_link is not None:
                node.add_route(peer_address, peer_link)

    def connect_relay(self, peer_address: str) -> None:
        """Client-side gateway dials the server-side relay listener."""
        self.peer_address = peer_address
        self._relay_conn = self._relay_stack.connect(peer_address, 9000)
        self._relay_conn.on_receive = self._reader.feed

    def _accept_relay(self, conn: TCPConnection) -> None:
        self._relay_conn = conn
        conn.on_receive = self._reader.feed

    # ------------------------------------------------------------------
    # packet interception
    # ------------------------------------------------------------------

    def handle(self, pkt: IPPacket) -> None:
        if pkt.proto == PROTO_TCP:
            if pkt.dst == self._spoof_host.address:
                segment = pkt.tcp
                intercept = (segment.dst_port == self.server_port
                             if self.role == "client-side"
                             else True)
                if intercept:
                    self._spoof_host.receive(pkt)
                    return
            if pkt.dst == self.address:
                self._relay_host.receive(pkt)
                return
        self.forward(pkt)

    # ------------------------------------------------------------------
    # client-side (G1) logic
    # ------------------------------------------------------------------

    def _accept_client(self, conn: TCPConnection) -> None:
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        self._conns[conn_id] = conn
        # Ship the client's source port too: G2 spoofs it so the real
        # server believes it talks to the client directly (full
        # transparency — and the precise §II-A t5 failure mode).
        self._send_frame(KIND_OPEN, conn_id,
                         struct.pack(">HH", self.server_port,
                                     conn.remote_port))
        conn.on_receive = lambda data: self._send_frame(
            KIND_DATA_C2S, conn_id, data)

    # ------------------------------------------------------------------
    # server-side (G2) logic
    # ------------------------------------------------------------------

    def _open_upstream(self, conn_id: int, port: int,
                       client_port: Optional[int] = None) -> None:
        conn = self._spoof_stack.connect(self.server_addr, port,
                                         local_port=client_port)
        self._conns[conn_id] = conn

        def on_receive(data: bytes) -> None:
            for index in range(0, len(data), RECORD_SIZE):
                record = data[index: index + RECORD_SIZE]
                encoded = self.codec.encode_record(conn_id, record)
                self._send_frame(KIND_DATA_S2C, conn_id, encoded)

        conn.on_receive = on_receive
        conn.on_remote_close = lambda: self._send_frame(KIND_CLOSE, conn_id)

    # ------------------------------------------------------------------
    # relay plumbing
    # ------------------------------------------------------------------

    def _send_frame(self, kind: int, conn_id: int, payload: bytes = b"") -> None:
        if self._relay_conn is None or not self._relay_conn.is_open:
            return
        frame = _frame(kind, conn_id, payload)
        self.records_relayed += 1
        self.relay_bytes += len(frame)
        self._relay_conn.send(frame)

    def _on_frame(self, kind: int, conn_id: int, payload: bytes) -> None:
        if kind == KIND_OPEN and self.role == "server-side":
            port, client_port = struct.unpack(">HH", payload)
            self._open_upstream(conn_id, port, client_port)
            return
        conn = self._conns.get(conn_id)
        if conn is None:
            return
        if kind == KIND_DATA_C2S and self.role == "server-side":
            if conn.is_open:
                conn.send(payload)
        elif kind == KIND_DATA_S2C and self.role == "client-side":
            decoded = self.codec.decode_record(conn_id, payload)
            if decoded is None:
                # Impossible over the reliable relay unless caches were
                # misconfigured; counted for visibility.
                self.undecodable_records += 1
                return
            if conn.is_open:
                conn.send(decoded)
        elif kind == KIND_CLOSE and self.role == "client-side":
            conn.close()


def create_proxy_pair(sim: Simulator, client_addr: str, server_addr: str,
                      policy: str = "tcp_seq",
                      g1_address: str = "10.255.1.1",
                      g2_address: str = "10.255.1.2",
                      tcp_config: Optional[TCPConfig] = None):
    """Build the G1 (client-side) / G2 (server-side) proxy pair."""
    scheme = FingerprintScheme()
    g1 = TcpProxyGateway(sim, "proxy-g1", "client-side", g1_address,
                         client_addr, server_addr, policy=policy,
                         scheme=scheme, tcp_config=tcp_config)
    g2 = TcpProxyGateway(sim, "proxy-g2", "server-side", g2_address,
                         client_addr, server_addr, policy=policy,
                         scheme=scheme, tcp_config=tcp_config)
    return g1, g2
