"""Byte-caching gateway appliances (IP-level and split-TCP)."""

from .middlebox import DecoderGateway, EncoderGateway, GatewayStats
from .pair import GatewayPair
from .resilience import (DecoderResilience, EncoderResilience,
                         ResilienceConfig, ResilienceStats)
from .tcp_proxy import TcpProxyGateway, create_proxy_pair

__all__ = [
    "DecoderGateway",
    "DecoderResilience",
    "EncoderGateway",
    "EncoderResilience",
    "GatewayStats",
    "GatewayPair",
    "ResilienceConfig",
    "ResilienceStats",
    "TcpProxyGateway",
    "create_proxy_pair",
]
