"""Byte-caching gateway appliances (IP-level and split-TCP)."""

from .middlebox import DecoderGateway, EncoderGateway, GatewayStats
from .pair import GatewayPair
from .tcp_proxy import TcpProxyGateway, create_proxy_pair

__all__ = [
    "DecoderGateway",
    "EncoderGateway",
    "GatewayStats",
    "GatewayPair",
    "TcpProxyGateway",
    "create_proxy_pair",
]
