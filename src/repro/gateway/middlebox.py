"""Byte-caching gateways (the appliances of Fig. 1 / Fig. 3).

Two on-path middleboxes bracket the resource-constrained segment:

* :class:`EncoderGateway` intercepts data-bearing IP packets flowing in
  the configured direction, runs the policy-parameterised encoder over
  the transport payload, and forwards the (possibly much smaller)
  packet.  It also shows the reverse packet stream to its policy (the
  ACK-gated extension listens there) and consumes control messages from
  the peer gateway.
* :class:`DecoderGateway` reconstructs the original payload, caches it,
  and forwards.  Undecodable packets are dropped (§IV-A t3) — the
  source of the *perceived* packet loss studied in §VII.

The gateways operate at the IP layer (§II-B): the TCP connection stays
end-to-end and endpoints never learn the gateways exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core.cache import ByteCache
from ..core.decoder import ByteCachingDecoder, DecodeStatus
from ..core.encoder import ByteCachingEncoder, EncodeResultPool
from ..core.fingerprint import FingerprintScheme
from ..core.policies.base import (DecoderPolicy, EncoderPolicy, PacketMeta,
                                  PolicyServices)
from ..core.wire import (EPOCH_STAMP_SIZE, SHIM_SIZE, WireFormatError,
                         parse_payload)
from ..net.packet import (ControlMessage, IPPacket, PROTO_DRE_CONTROL,
                          PROTO_TCP, PROTO_UDP)
from ..sim.engine import Simulator
from ..sim.node import Middlebox
from ..sim.trace import NULL_TRACER, Tracer
from .resilience import (MODE_BYPASS, MODE_RAW, RESILIENCE_CONTROL_KINDS,
                         DecoderResilience, EncoderResilience,
                         ResilienceConfig)


def _default_forward_pred(data_dst: Optional[str]) -> Callable[[IPPacket], bool]:
    """Forward direction = data packets heading to ``data_dst`` (if set)."""
    def pred(pkt: IPPacket) -> bool:
        if data_dst is not None and pkt.dst != data_dst:
            return False
        return pkt.proto in (PROTO_TCP, PROTO_UDP)
    return pred


def _payload_of(pkt: IPPacket):
    """Transport payload object carrying ``.data`` or None."""
    if pkt.proto in (PROTO_TCP, PROTO_UDP):
        return pkt.payload
    return None


def _flow_of(pkt: IPPacket) -> tuple:
    payload = pkt.payload
    return (pkt.src, payload.src_port, pkt.dst, payload.dst_port)


@dataclass
class GatewayStats:
    """Wire-level accounting at a gateway."""

    data_packets: int = 0
    encoded_packets: int = 0
    passthrough_packets: int = 0
    bytes_before: int = 0          # wire size entering the gateway
    bytes_after: int = 0           # wire size leaving it
    control_messages_sent: int = 0
    control_bytes_sent: int = 0
    control_messages_received: int = 0
    control_bytes_received: int = 0
    decoded_ok: int = 0
    undecodable_dropped: int = 0
    checksum_dropped: int = 0
    malformed_dropped: int = 0
    desync_dropped: int = 0        # epoch mismatch / mid-resync drops
    dropped_while_down: int = 0    # packets offered during a crash window
    buffered: int = 0
    reinjected: int = 0

    @property
    def dropped_total(self) -> int:
        return (self.undecodable_dropped + self.checksum_dropped
                + self.malformed_dropped + self.desync_dropped)


class _GatewayBase(Middlebox):
    """Shared plumbing: addressing, control channel, direction filter."""

    def __init__(self, sim: Simulator, name: str, address: str,
                 scheme: FingerprintScheme, cache: ByteCache,
                 data_dst: Optional[str] = None,
                 forward_pred: Optional[Callable[[IPPacket], bool]] = None,
                 tracer: Tracer = NULL_TRACER):
        super().__init__(sim, name, tracer)
        self.address = address
        self.scheme = scheme
        self.cache = cache
        self.peer_address: Optional[str] = None
        self.forward_pred = (forward_pred if forward_pred is not None
                             else _default_forward_pred(data_dst))
        self.stats = GatewayStats()
        #: True while the gateway is crashed: every offered packet is
        #: dropped (see repro.sim.faults.schedule_gateway_restart).
        self.down = False
        #: Set by subclasses when a ResilienceConfig is supplied.
        self.resilience = None
        #: Duck-typed repro.metrics.spans.SpanRecorder (PR 3 contract:
        #: disabled path is one attribute load + `is not None`).
        self.spans = None

    def set_peer(self, peer_address: str) -> None:
        """Address of the other gateway (for control messages)."""
        self.peer_address = peer_address

    def fail(self) -> None:
        """Crash the gateway: drop everything until :meth:`restart`."""
        self.down = True

    def restart(self) -> None:
        """Come back up with a cold cache (and epoch reset to zero)."""
        self.down = False
        self.cache.flush()
        self.cache.epoch = 0
        if self.resilience is not None:
            self.resilience.on_restart()

    def handle(self, pkt: IPPacket) -> None:
        if self.down:
            self.stats.dropped_while_down += 1
            self.tracer.emit(self.name, "drop_gateway_down",
                             packet_id=pkt.packet_id)
            spans = self.spans
            if spans is not None:
                spans.packet_event("drop_gateway_down", self.name,
                                   pkt.packet_id)
            return
        super().handle(pkt)

    def _handle_control(self, pkt: IPPacket) -> Optional[IPPacket]:
        """Consume a control packet addressed to us; forward otherwise."""
        if pkt.dst != self.address:
            return pkt
        message: ControlMessage = pkt.payload  # type: ignore[assignment]
        self.stats.control_messages_received += 1
        self.stats.control_bytes_received += pkt.wire_size
        if (self.resilience is not None
                and message.kind in RESILIENCE_CONTROL_KINDS):
            self.resilience.on_control(message.kind, message.payload)
        else:
            self.policy.on_control(message.kind, message.payload, self.cache)
        return None

    def send_control(self, kind: str, payload: object) -> None:
        if self.peer_address is None:
            return
        message = ControlMessage(kind=kind, payload=payload)
        pkt = IPPacket(src=self.address, dst=self.peer_address,
                       proto=PROTO_DRE_CONTROL, payload=message,
                       created_at=self.sim.now)
        self.stats.control_messages_sent += 1
        self.stats.control_bytes_sent += pkt.wire_size
        self.forward(pkt)

    def _services(self) -> PolicyServices:
        return PolicyServices(send_control=self.send_control,
                              clock=lambda: self.sim.now)


class EncoderGateway(_GatewayBase):
    """The encoding appliance, deployed at the content side (Fig. 3)."""

    def __init__(self, sim: Simulator, name: str, address: str,
                 scheme: FingerprintScheme, cache: ByteCache,
                 policy: EncoderPolicy,
                 data_dst: Optional[str] = None,
                 forward_pred: Optional[Callable[[IPPacket], bool]] = None,
                 tracer: Tracer = NULL_TRACER,
                 resilience: Optional[ResilienceConfig] = None):
        super().__init__(sim, name, address, scheme, cache,
                         data_dst, forward_pred, tracer)
        self.policy = policy
        policy.attach_services(self._services())
        # Savings accounting nets out the per-packet wire overhead: the
        # 2-byte shim, plus the epoch stamp when resilience is armed.
        shim_overhead = SHIM_SIZE + (EPOCH_STAMP_SIZE
                                     if resilience is not None else 0)
        self.encoder = ByteCachingEncoder(scheme, cache, policy,
                                          shim_overhead=shim_overhead)
        # One result shell per in-flight packet is all the gateway ever
        # holds, so the encoder recycles them through a small free list.
        self._result_pool = EncodeResultPool()
        self.encoder.result_pool = self._result_pool
        if resilience is not None:
            self.resilience = EncoderResilience(self, resilience)
        self._data_counter = 0
        #: The §VII dependency-graph bookkeeping below grows with every
        #: data packet of the run — fine for one transfer, unbounded for
        #: a serving run pushing millions of packets through one
        #: gateway.  The serving engine clears this flag; everything
        #: else keeps the analysis logs.
        self.retain_logs = True
        #: packet_id -> set of packet ids it was encoded against
        #: (dependency bookkeeping for the §VII analysis)
        self.dependency_log: dict = {}
        #: packet_id -> TCP sequence number (folds retransmissions of
        #: one segment together in the dependency-graph analysis)
        self.segment_log: dict = {}

    def process(self, pkt: IPPacket) -> Optional[IPPacket]:
        if pkt.proto == PROTO_DRE_CONTROL:
            return self._handle_control(pkt)

        payload = _payload_of(pkt)
        if payload is None:
            return pkt

        if not self.forward_pred(pkt):
            self.policy.on_reverse_packet(pkt, self.cache)
            return pkt

        if not payload.data:
            return pkt  # SYN / bare ACK / FIN: nothing to encode

        self.stats.data_packets += 1
        self.stats.bytes_before += pkt.wire_size
        mode = (self.resilience.encode_mode()
                if self.resilience is not None else None)
        if mode == MODE_BYPASS:
            # Peer unresponsive: forward untouched (no shim, no cache
            # update) so TCP keeps flowing at zero compression instead
            # of feeding packets to a gateway that cannot decode them.
            self.stats.passthrough_packets += 1
            self.resilience.stats.degraded_packets += 1
            self.stats.bytes_after += pkt.wire_size
            return pkt
        meta = PacketMeta(
            packet_id=pkt.packet_id,
            flow=_flow_of(pkt),
            tcp_seq=payload.seq if pkt.proto == PROTO_TCP else None,
            counter=self._data_counter,
        )
        self._data_counter += 1
        if pkt.proto == PROTO_TCP and self.retain_logs:
            self.segment_log[pkt.packet_id] = payload.seq
        spans = self.spans
        span = None
        if spans is not None:
            # Roots this packet's trace (flow-sampled); the codec's
            # stage sub-spans attach underneath via the context stack.
            span = spans.packet_begin("encode", self.name, pkt.packet_id,
                                      flow=meta.flow, seq=meta.tcp_seq)
        result = self.encoder.encode(payload.data, meta,
                                     force_raw=(mode == MODE_RAW))
        if mode == MODE_RAW:
            self.resilience.stats.grace_packets += 1
        payload.data = result.data
        payload.dre_encoded = True
        tag = self.policy.wire_tag(meta)
        if tag is not None and hasattr(payload, "options_size"):
            # The tag rides in the shim; charge 4 bytes of wire overhead.
            payload.dre_wire_tag = tag
            payload.options_size += 4
        if self.resilience is not None:
            # The epoch rides in the shim; charge its wire overhead.
            payload.dre_epoch = self.cache.epoch
            if hasattr(payload, "options_size"):
                payload.options_size += EPOCH_STAMP_SIZE
        if result.encoded:
            self.stats.encoded_packets += 1
            if self.retain_logs:
                self.dependency_log[pkt.packet_id] = result.dependencies
            self.tracer.emit(self.name, "encode", packet_id=pkt.packet_id,
                             deps=sorted(result.dependencies),
                             saved=result.bytes_in - result.bytes_out)
            if spans is not None:
                # The paper's causal arrow: this packet now depends on
                # the traces of the cache entries it was encoded against.
                spans.link_deps(span, result.dependencies)
        else:
            self.stats.passthrough_packets += 1
        if spans is not None:
            spans.packet_end(span, encoded=result.encoded,
                             bytes_in=result.bytes_in,
                             bytes_out=result.bytes_out)
        self.stats.bytes_after += pkt.wire_size
        # The shell is consumed within this event (dependencies/regions
        # are never recycled — see EncodeResultPool's ownership rule).
        self._result_pool.release(result)
        return pkt


class DecoderGateway(_GatewayBase):
    """The decoding appliance, deployed at the client side (Fig. 3)."""

    def __init__(self, sim: Simulator, name: str, address: str,
                 scheme: FingerprintScheme, cache: ByteCache,
                 policy: Optional[DecoderPolicy] = None,
                 data_dst: Optional[str] = None,
                 forward_pred: Optional[Callable[[IPPacket], bool]] = None,
                 tracer: Tracer = NULL_TRACER,
                 resilience: Optional[ResilienceConfig] = None):
        super().__init__(sim, name, address, scheme, cache,
                         data_dst, forward_pred, tracer)
        self.policy = policy if policy is not None else DecoderPolicy()
        self.policy.attach_services(self._services())
        if resilience is not None:
            self.resilience = DecoderResilience(self, resilience)
        # The NACK policy re-injects buffered packets once repaired.
        if hasattr(self.policy, "retry") and getattr(self.policy, "retry") is None:
            self.policy.retry = self.reinject  # type: ignore[attr-defined]
        self.decoder = ByteCachingDecoder(scheme, cache, self.policy)
        self._data_counter = 0
        #: Grows per delivered packet; cleared by the serving engine
        #: (see EncoderGateway.retain_logs).
        self.retain_logs = True
        #: packet ids successfully decoded and forwarded (for the
        #: dependency-graph analysis of §VII)
        self.delivered_ids: set = set()

    def process(self, pkt: IPPacket) -> Optional[IPPacket]:
        if pkt.proto == PROTO_DRE_CONTROL:
            return self._handle_control(pkt)

        payload = _payload_of(pkt)
        if payload is None:
            return pkt
        if not self.forward_pred(pkt):
            # Reverse direction: show ACKs to the policy (the ACK-gated
            # mirror commits its deferred cache updates here).
            self.policy.on_reverse_packet(pkt, self.cache)
            return pkt
        if not payload.dre_encoded:
            return pkt

        self.stats.data_packets += 1
        self.stats.bytes_before += pkt.wire_size
        outcome = self._decode_in_place(pkt)
        if outcome is None:
            return None
        self.stats.bytes_after += outcome.wire_size
        return outcome

    def reinject(self, pkt: IPPacket) -> None:
        """Re-process a packet the policy buffered (NACK repairs)."""
        self.stats.reinjected += 1
        outcome = self._decode_in_place(pkt)
        if outcome is not None:
            self.stats.bytes_after += outcome.wire_size
            self.forward(outcome)

    # ------------------------------------------------------------------

    def _decode_in_place(self, pkt: IPPacket) -> Optional[IPPacket]:
        payload = pkt.payload
        meta = PacketMeta(
            packet_id=pkt.packet_id,
            flow=_flow_of(pkt),
            tcp_seq=payload.seq if pkt.proto == PROTO_TCP else None,
            counter=self._data_counter,
        )
        self._data_counter += 1
        spans = self.spans
        span = None
        if spans is not None:
            # Continues the trace rooted at the encoder gateway (the
            # packet id resolves it across the link hop).
            span = spans.packet_begin("decode", self.name, pkt.packet_id,
                                      flow=meta.flow, seq=meta.tcp_seq)
        carries_regions = False
        if self.resilience is not None:
            try:
                carries_regions = not isinstance(
                    parse_payload(payload.data), bytes)
            except WireFormatError:
                pass  # fall through; the decoder counts it as malformed
            if carries_regions and not self.resilience.gate_encoded(
                    getattr(payload, "dre_epoch", None)):
                # Foreign cache generation (or mid-resync): the
                # references cannot be trusted, drop and let TCP
                # retransmit into the resynced cache.
                self.stats.desync_dropped += 1
                self.tracer.emit(self.name, "drop_desync",
                                 packet_id=pkt.packet_id)
                if spans is not None:
                    spans.packet_end(span, status="desync_drop")
                return None
        tag = getattr(payload, "dre_wire_tag", None)
        if tag is not None:
            self.policy.on_wire_tag(tag, meta, self.cache)
        result = self.decoder.decode(payload.data, meta,
                                     checksum=payload.checksum, pkt=pkt)
        if self.resilience is not None and carries_regions:
            self.resilience.record_outcome(
                result.ok or result.status is DecodeStatus.BUFFERED)
        if result.ok:
            payload.data = result.payload
            payload.dre_encoded = False
            self.stats.decoded_ok += 1
            if self.retain_logs:
                self.delivered_ids.add(pkt.packet_id)
            if spans is not None:
                spans.packet_end(span, status="ok")
            return pkt
        if result.status is DecodeStatus.BUFFERED:
            self.stats.buffered += 1
            self.tracer.emit(self.name, "buffer", packet_id=pkt.packet_id,
                             missing=len(result.missing))
            if spans is not None:
                spans.packet_end(span, status="buffered",
                                 missing=len(result.missing))
            return None
        if result.status is DecodeStatus.MISSING:
            self.stats.undecodable_dropped += 1
            self.tracer.emit(self.name, "drop_undecodable",
                             packet_id=pkt.packet_id,
                             missing=len(result.missing))
            if spans is not None:
                spans.packet_end(span, status="missing",
                                 missing=len(result.missing))
        elif result.status is DecodeStatus.CHECKSUM_MISMATCH:
            self.stats.checksum_dropped += 1
            self.tracer.emit(self.name, "drop_checksum", packet_id=pkt.packet_id)
            if spans is not None:
                spans.packet_end(span, status="checksum_mismatch")
        else:
            self.stats.malformed_dropped += 1
            self.tracer.emit(self.name, "drop_malformed", packet_id=pkt.packet_id)
            if spans is not None:
                spans.packet_end(span, status="malformed")
        return None
