"""Gateway failure & cache-divergence resilience.

The per-packet policies (§V) keep encoder and decoder caches consistent
against *packet-level* divergence — loss, corruption, re-ordering of
individual data packets.  Real middlebox deployments also lose
*cache-level* sync: a decoder gateway restarts with a cold cache,
control messages are themselves lost on the wireless segment, or
asymmetric eviction leaves the encoder referencing entries the decoder
no longer holds.  Each produces the same persistent-stall pathology the
paper documents (Fig. 4–6), except unrecoverable by any per-packet
policy.  This module adds the explicit recovery protocol between the
in-path boxes that TCP/NC and TCP-Forward argue is required to mask
wireless-segment failures from end-to-end TCP:

* **Epoch-stamped caches** — :class:`~repro.core.cache.ByteCache`
  carries a generation number; every encoded payload is stamped with
  the encoder's epoch (one shim byte of wire overhead).  A decoder that
  sees a foreign epoch on a region-bearing payload *drops and signals*
  instead of mis-decoding against the wrong cache generation.
* **Resync protocol** over ``PROTO_DRE_CONTROL`` — a decoder that
  detects divergence (epoch mismatch, or the undecodable-rate watchdog
  tripping) flushes its cache and sends ``cache_resync``; the encoder
  flushes, bumps its epoch, and acknowledges with the new epoch.  The
  request is retried with timeout + exponential backoff because control
  messages ride the same lossy links as data.
* **Graceful degradation** — the encoder heartbeats its peer; while the
  peer is unresponsive the encoder falls back to pass-through
  (unencoded) forwarding so TCP keeps flowing at zero compression
  rather than stalling, then flushes/bumps and re-enables encoding once
  the peer answers again.  A short post-flush *grace window* ships
  payloads raw (but shimmed and cached) so the first references after a
  resync land on entries the decoder provably holds.

Failure injection lives in :mod:`repro.sim.faults`
(``schedule_gateway_restart``, ``schedule_asymmetric_eviction``,
``match_control``); recovery metrics surface through
:class:`~repro.metrics.collectors.TransferResult`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .middlebox import DecoderGateway, EncoderGateway

CONTROL_KIND_HEARTBEAT = "heartbeat"
CONTROL_KIND_HEARTBEAT_ACK = "heartbeat_ack"
CONTROL_KIND_RESYNC = "cache_resync"
CONTROL_KIND_RESYNC_ACK = "cache_resync_ack"

#: Control kinds consumed by the resilience layer rather than the policy.
RESILIENCE_CONTROL_KINDS = frozenset({
    CONTROL_KIND_HEARTBEAT,
    CONTROL_KIND_HEARTBEAT_ACK,
    CONTROL_KIND_RESYNC,
    CONTROL_KIND_RESYNC_ACK,
})

#: Encoder data-path modes (see :meth:`EncoderResilience.encode_mode`).
MODE_ENCODE = "encode"        # normal operation
MODE_RAW = "raw"              # post-flush grace: shimmed raw, still cached
MODE_BYPASS = "bypass"        # degraded: untouched pass-through, no caching


@dataclass
class ResilienceConfig:
    """Tunables for the recovery protocol (times in simulated seconds)."""

    heartbeat_interval: float = 0.25
    #: No heartbeat ack for this long -> peer presumed down -> degraded.
    heartbeat_timeout: float = 0.75
    #: Retransmit an unanswered ``cache_resync`` after this long ...
    resync_timeout: float = 0.25
    #: ... growing by this factor per retry (control rides lossy links) ...
    resync_backoff: float = 2.0
    #: ... giving up (until the next divergence signal) after this many.
    resync_max_retries: int = 6
    #: Encoder ships raw-but-cached payloads this long after a flush so
    #: the first post-resync references are against entries the decoder
    #: has certainly seen.
    resync_grace: float = 0.1
    #: Sliding window of region-bearing decode outcomes ...
    watchdog_window: int = 16
    #: ... tripping a resync when this fraction of them were undecodable.
    watchdog_threshold: float = 0.5


@dataclass
class ResilienceStats:
    """Recovery accounting, one instance per gateway side."""

    # -- encoder side
    heartbeats_sent: int = 0
    heartbeat_acks_received: int = 0
    degraded: bool = False          # current heartbeat state
    degraded_entries: int = 0       # times pass-through mode was entered
    degraded_packets: int = 0       # data packets forwarded unencoded
    degraded_time: float = 0.0      # total seconds spent degraded
    grace_packets: int = 0          # data packets shipped raw post-flush
    resyncs_handled: int = 0        # flush+bump exchanges served

    # -- decoder side
    heartbeats_answered: int = 0
    resyncs_initiated: int = 0
    resyncs_completed: int = 0
    resync_retries: int = 0
    resync_failures: int = 0        # gave up after resync_max_retries
    resync_times: List[float] = field(default_factory=list)
    epoch_mismatch_dropped: int = 0
    desync_dropped: int = 0         # region packets dropped mid-resync
    watchdog_trips: int = 0

    @property
    def time_to_resync(self) -> Optional[float]:
        """Mean seconds from divergence detection to acknowledged resync."""
        if not self.resync_times:
            return None
        return sum(self.resync_times) / len(self.resync_times)


class EncoderResilience:
    """Encoder-side controller: heartbeats, degradation, resync serving."""

    def __init__(self, gateway: "EncoderGateway", config: ResilienceConfig):
        self.gateway = gateway
        self.config = config
        self.stats = ResilienceStats()
        self._degraded_since: Optional[float] = None
        self._last_ack_time = gateway.sim.now
        self._last_resync_id: Optional[object] = None
        self._grace_until = -1.0
        self._heartbeat_seq = 0
        #: Heartbeat clock-rate multiplier (1.0 = nominal).  A chaos
        #: campaign sets this >1 to model a slow/drifting middlebox
        #: clock: ticks stretch, acks thin out, and the encoder's own
        #: timeout check can false-trip into degraded mode.  See
        #: repro.sim.faults.schedule_clock_skew.
        self.clock_skew = 1.0
        #: (bytes_before, bytes_after) gateway snapshot at the moment of
        #: the last flush+bump — lets callers measure the post-resync
        #: compression ratio in isolation.
        self.resync_marker: Optional[tuple] = None
        gateway.sim.after(config.heartbeat_interval, self._heartbeat_tick)

    @property
    def epoch(self) -> int:
        return self.gateway.cache.epoch

    @property
    def degraded(self) -> bool:
        return self.stats.degraded

    def encode_mode(self) -> str:
        """How the gateway should treat the current data packet."""
        if self.stats.degraded:
            return MODE_BYPASS
        if self.gateway.sim.now < self._grace_until:
            return MODE_RAW
        return MODE_ENCODE

    def on_control(self, kind: str, payload: object) -> None:
        if kind == CONTROL_KIND_HEARTBEAT_ACK:
            self._last_ack_time = self.gateway.sim.now
            self.stats.heartbeat_acks_received += 1
            if self.stats.degraded:
                self._recover()
        elif kind == CONTROL_KIND_RESYNC:
            # Idempotent per request id: retries of an already-served
            # request must not flush (and bump) a second time, or the
            # ack the decoder is waiting for would carry a dead epoch.
            if payload != self._last_resync_id:
                self._last_resync_id = payload
                self._flush_and_bump()
                self.stats.resyncs_handled += 1
                spans = self.gateway.spans
                if spans is not None:
                    spans.event("resync_served", self.gateway.name,
                                resync_id=payload, epoch=self.epoch)
            self.gateway.send_control(CONTROL_KIND_RESYNC_ACK,
                                      (payload, self.epoch))

    def on_restart(self) -> None:
        """Cold restart: epoch restarts at zero with an empty cache."""
        now = self.gateway.sim.now
        if self._degraded_since is not None:
            self.stats.degraded_time += now - self._degraded_since
            self._degraded_since = None
        self.stats.degraded = False
        self._last_ack_time = now
        self._last_resync_id = None
        self._grace_until = now + self.config.resync_grace

    # ------------------------------------------------------------------

    def _flush_and_bump(self) -> None:
        gateway = self.gateway
        gateway.cache.flush()
        gateway.cache.bump_epoch()
        self._grace_until = gateway.sim.now + self.config.resync_grace
        self.resync_marker = (gateway.stats.bytes_before,
                              gateway.stats.bytes_after)

    def _recover(self) -> None:
        """Peer answered again: flush, bump, and resume encoding.

        The decoder will observe the new epoch on the next region-bearing
        packet and run the resync handshake to adopt it; until then the
        grace window keeps encodings raw so nothing is lost to the race.
        """
        now = self.gateway.sim.now
        self.stats.degraded = False
        if self._degraded_since is not None:
            self.stats.degraded_time += now - self._degraded_since
            self._degraded_since = None
        self._flush_and_bump()
        self.gateway.tracer.emit(self.gateway.name, "degraded_recover",
                                 epoch=self.epoch)
        spans = self.gateway.spans
        if spans is not None:
            spans.event("degraded_recover", self.gateway.name,
                        epoch=self.epoch)

    def _heartbeat_tick(self) -> None:
        gateway = self.gateway
        gateway.sim.after(self.config.heartbeat_interval * self.clock_skew,
                          self._heartbeat_tick)
        if gateway.down:
            return
        self._heartbeat_seq += 1
        self.stats.heartbeats_sent += 1
        gateway.send_control(CONTROL_KIND_HEARTBEAT, self._heartbeat_seq)
        if (not self.stats.degraded
                and gateway.sim.now - self._last_ack_time
                > self.config.heartbeat_timeout):
            self.stats.degraded = True
            self.stats.degraded_entries += 1
            self._degraded_since = gateway.sim.now
            gateway.tracer.emit(gateway.name, "degraded_enter",
                                last_ack_age=gateway.sim.now
                                - self._last_ack_time)
            spans = gateway.spans
            if spans is not None:
                spans.event("degraded_enter", gateway.name,
                            last_ack_age=gateway.sim.now
                            - self._last_ack_time)


class DecoderResilience:
    """Decoder-side controller: epoch gating, watchdog, resync client."""

    def __init__(self, gateway: "DecoderGateway", config: ResilienceConfig):
        self.gateway = gateway
        self.config = config
        self.stats = ResilienceStats()
        self.resyncing = False
        self._resync_id = 0
        self._resync_started = 0.0
        self._retry_event = None
        self._retry_delay = config.resync_timeout
        self._retries = 0
        self._window: deque = deque(maxlen=config.watchdog_window)
        #: Open span for the in-flight resync handshake (a multi-event
        #: control-plane unit: start -> retries -> ack / give-up).
        self._resync_span = None

    @property
    def epoch(self) -> int:
        return self.gateway.cache.epoch

    def on_control(self, kind: str, payload: object) -> None:
        if kind == CONTROL_KIND_HEARTBEAT:
            self.stats.heartbeats_answered += 1
            self.gateway.send_control(CONTROL_KIND_HEARTBEAT_ACK, payload)
        elif kind == CONTROL_KIND_RESYNC_ACK:
            resync_id, epoch = payload  # type: ignore[misc]
            if not self.resyncing or resync_id != self._resync_id:
                return  # stale ack from an abandoned attempt
            self.gateway.cache.epoch = epoch
            self.resyncing = False
            if self._retry_event is not None:
                self._retry_event.cancel()
                self._retry_event = None
            self.stats.resyncs_completed += 1
            self.stats.resync_times.append(
                self.gateway.sim.now - self._resync_started)
            self._window.clear()
            self.gateway.tracer.emit(
                self.gateway.name, "resync_complete", epoch=epoch,
                elapsed=self.gateway.sim.now - self._resync_started)
            spans = self.gateway.spans
            if spans is not None:
                spans.end(self._resync_span, outcome="completed",
                          epoch=epoch)
                self._resync_span = None

    def gate_encoded(self, wire_epoch: Optional[int]) -> bool:
        """Admission check for a *region-bearing* payload.

        Returns False when the packet must be dropped: decoding against
        a diverged cache generation would either fail or, worse,
        mis-decode.  Raw (shim-only) payloads are never gated — they
        carry no references and always forward.
        """
        if self.resyncing:
            self.stats.desync_dropped += 1
            return False
        if wire_epoch is not None and wire_epoch != self.epoch:
            self.stats.epoch_mismatch_dropped += 1
            self.start_resync()
            return False
        return True

    def record_outcome(self, ok: bool) -> None:
        """Feed the undecodable-rate watchdog one region-packet outcome.

        Catches divergence the epoch cannot see: a decoder that restarted
        into the *same* epoch number, or asymmetric eviction — the epoch
        matches but references keep missing.
        """
        if self.resyncing:
            return
        self._window.append(0 if ok else 1)
        config = self.config
        if (len(self._window) == config.watchdog_window
                and sum(self._window)
                >= config.watchdog_threshold * config.watchdog_window):
            self.stats.watchdog_trips += 1
            self.gateway.tracer.emit(
                self.gateway.name, "watchdog_trip",
                undecodable=sum(self._window),
                window=config.watchdog_window)
            spans = self.gateway.spans
            if spans is not None:
                spans.event("watchdog_trip", self.gateway.name,
                            undecodable=sum(self._window),
                            window=config.watchdog_window)
            self.start_resync()

    def start_resync(self) -> None:
        """Flush, then request a flush+bump from the encoder (retried)."""
        if self.resyncing:
            return
        self.resyncing = True
        self._resync_id += 1
        self._resync_started = self.gateway.sim.now
        self._retries = 0
        self._retry_delay = self.config.resync_timeout
        self.gateway.cache.flush()
        self._window.clear()
        self.stats.resyncs_initiated += 1
        self.gateway.tracer.emit(self.gateway.name, "resync_start",
                                 resync_id=self._resync_id)
        spans = self.gateway.spans
        if spans is not None:
            self._resync_span = spans.open("resync", self.gateway.name,
                                           resync_id=self._resync_id)
        self._send_request()

    def on_restart(self) -> None:
        """Cold restart: forget any in-flight resync, epoch back to zero."""
        if self._retry_event is not None:
            self._retry_event.cancel()
            self._retry_event = None
        self.resyncing = False
        self._window.clear()
        spans = self.gateway.spans
        if spans is not None and self._resync_span is not None:
            spans.end(self._resync_span, outcome="aborted_by_restart")
            self._resync_span = None

    # ------------------------------------------------------------------

    def _send_request(self) -> None:
        self.gateway.send_control(CONTROL_KIND_RESYNC, self._resync_id)
        self._retry_event = self.gateway.sim.after(self._retry_delay,
                                                   self._retry)

    def _retry(self) -> None:
        self._retry_event = None
        if not self.resyncing:
            return
        if self._retries >= self.config.resync_max_retries:
            # Give up for now; the next epoch mismatch or watchdog trip
            # starts a fresh attempt (with a fresh id).
            self.resyncing = False
            self.stats.resync_failures += 1
            self.gateway.tracer.emit(self.gateway.name, "resync_give_up",
                                     resync_id=self._resync_id,
                                     retries=self._retries)
            spans = self.gateway.spans
            if spans is not None:
                spans.end(self._resync_span, outcome="gave_up",
                          retries=self._retries)
                self._resync_span = None
            return
        self._retries += 1
        self.stats.resync_retries += 1
        self._retry_delay *= self.config.resync_backoff
        spans = self.gateway.spans
        if spans is not None:
            spans.child_event(self._resync_span, "resync_retry",
                              self.gateway.name, attempt=self._retries,
                              delay=self._retry_delay)
        self._send_request()
